"""Packed ``uint64`` bitset kernels over :class:`CSRArrays`.

The representation mirrors the pure-Python kernels bit for bit: row
``v`` of a ``uint64[n_vertices, n_words]`` matrix is vertex ``v``'s
source mask, with batched source ``i`` occupying bit ``i & 63`` of word
``i >> 6`` — so ``int.from_bytes(row, "little")`` reproduces the exact
big int the authoritative kernels compute, which is what the
differential tests assert.

Two sweep strategies, same as the Python layer:

* **Level-synchronous DAG sweep** — vertices grouped by topological
  level; each level resolves with one fancy-indexed gather of its
  predecessors' rows and one ``np.bitwise_or.reduceat``, so the Python
  interpreter runs once per *level*, not once per vertex or edge.
* **Frontier-synchronous BFS** — on cyclic snapshots, rows that grew
  re-enter the frontier; propagation is an unbuffered
  ``np.bitwise_or.at`` scatter per round.
"""

from __future__ import annotations

from collections.abc import Sequence

try:
    import numpy as np
except ImportError:  # the pure-Python fallback never imports this module
    np = None

from repro.accel.arrays import CSRArrays, gather_ranges
from repro.errors import NotADAGError
from repro.resilience.deadline import current_deadline

__all__ = [
    "packed_batch_reachable",
    "packed_descendant_bitsets",
    "packed_reach_masks",
    "rows_to_ints",
    "unpacked_indices",
]

_ONE = None
_SIX3 = None


def _consts():
    global _ONE, _SIX3
    if _ONE is None:
        _ONE = np.uint64(1)
        _SIX3 = np.uint64(63)
    return _ONE, _SIX3


def _seed(num_vertices: int, sources: Sequence[int], n_words: int):
    """A zero matrix with each source's own bit set (duplicates OR in)."""
    one, six3 = _consts()
    masks = np.zeros((num_vertices, n_words), dtype=np.uint64)
    src = np.asarray(sources, dtype=np.int64)
    slots = np.arange(len(sources), dtype=np.uint64)
    np.bitwise_or.at(
        masks, (src, (slots >> np.uint64(6)).astype(np.int64)), one << (slots & six3)
    )
    return masks


def _sweep_levels(masks, schedule) -> None:
    """Run the level-synchronous DAG sweep in place."""
    deadline = current_deadline()
    for verts, preds, starts in schedule:
        if deadline is not None:
            deadline.check()
        merged = np.bitwise_or.reduceat(masks[preds], starts, axis=0)
        masks[verts] |= merged


def _sweep_frontier(masks, indptr, indices) -> None:
    """Run the frontier-synchronous BFS to fixpoint in place."""
    deadline = current_deadline()
    frontier = np.flatnonzero(masks.any(axis=1))
    while frontier.size:
        if deadline is not None:
            deadline.check()
        counts = indptr[frontier + 1] - indptr[frontier]
        frontier = frontier[counts > 0]
        if not frontier.size:
            return
        targets = gather_ranges(indptr, indices, frontier)
        rows = masks[np.repeat(frontier, counts[counts > 0])]
        touched = np.unique(targets)
        before = masks[touched].copy()
        np.bitwise_or.at(masks, targets, rows)
        frontier = touched[(masks[touched] != before).any(axis=1)]


def packed_reach_masks(
    arrays: CSRArrays, sources: Sequence[int], forward: bool = True
):
    """Per-vertex packed source masks — the :func:`reach_masks` twin.

    Bit ``i`` of row ``v`` is set iff ``sources[i]`` reaches ``v``
    (``forward=True``) or ``v`` reaches ``sources[i]`` (``forward=False``).
    """
    n_words = (len(sources) + 63) >> 6
    masks = _seed(arrays.num_vertices, sources, n_words)
    schedule = arrays.schedule(forward)
    if schedule is not None:
        _sweep_levels(masks, schedule)
    elif forward:
        _sweep_frontier(masks, arrays.out_indptr, arrays.out_indices)
    else:
        _sweep_frontier(masks, arrays.in_indptr, arrays.in_indices)
    return masks


def packed_descendant_bitsets(arrays: CSRArrays):
    """Packed transitive closure — the :func:`descendant_bitsets` twin.

    Bit ``t`` of row ``v`` is set iff ``v ⇝ t`` (including ``v``
    itself).  DAG-only, computed by the backward level sweep.
    """
    schedule = arrays.schedule(forward=False)
    if schedule is None:
        raise NotADAGError("descendant_bitsets requires a DAG")
    n = arrays.num_vertices
    one, six3 = _consts()
    masks = np.zeros((n, (n + 63) >> 6), dtype=np.uint64)
    ids = np.arange(n, dtype=np.uint64)
    masks[np.arange(n), (ids >> np.uint64(6)).astype(np.int64)] = one << (ids & six3)
    _sweep_levels(masks, schedule)
    return masks


def rows_to_ints(masks) -> list[int]:
    """Convert packed rows to the big ints the Python kernels return."""
    n, n_words = masks.shape
    if n_words == 0:
        return [0] * n
    data = np.ascontiguousarray(masks, dtype="<u8").tobytes()
    stride = 8 * n_words
    from_bytes = int.from_bytes
    return [
        from_bytes(data[row * stride : (row + 1) * stride], "little")
        for row in range(n)
    ]


def unpacked_indices(mask: int) -> list[int]:
    """Set-bit positions of one big-int bitset, via a single unpackbits.

    The inverse direction of :func:`rows_to_ints` for a single row:
    enumeration fast paths hold a closure row as a big int and need its
    members as indices.
    """
    if not mask:
        return []
    data = np.frombuffer(
        mask.to_bytes((mask.bit_length() + 7) >> 3, "little"), dtype=np.uint8
    )
    return np.flatnonzero(np.unpackbits(data, bitorder="little")).tolist()


def packed_batch_reachable(
    arrays: CSRArrays, pairs: Sequence[tuple[int, int]], word_bits: int
) -> list[bool]:
    """Exact batched pair reachability — the :func:`batch_reachable` twin.

    Same wave decomposition as the Python kernel (distinct sources
    grouped, ``word_bits`` per sweep) but answers are extracted straight
    from the packed matrix with one vectorized word/bit gather per wave
    — no big ints are ever materialised.
    """
    deadline = current_deadline()
    one, six3 = _consts()
    targets_of: dict[int, set[int]] = {}
    for s, t in pairs:
        targets_of.setdefault(s, set()).add(t)
    answers: dict[tuple[int, int], bool] = {}
    sources = list(targets_of)
    for base in range(0, len(sources), word_bits):
        if deadline is not None:
            deadline.check()
        wave = sources[base : base + word_bits]
        masks = packed_reach_masks(arrays, wave)
        wave_targets: list[int] = []
        wave_slots: list[int] = []
        for slot, s in enumerate(wave):
            for t in targets_of[s]:
                wave_targets.append(t)
                wave_slots.append(slot)
        slots = np.asarray(wave_slots, dtype=np.uint64)
        words = masks[
            np.asarray(wave_targets, dtype=np.int64),
            (slots >> np.uint64(6)).astype(np.int64),
        ]
        hits = ((words >> (slots & six3)) & one).astype(bool)
        cursor = 0
        for slot, s in enumerate(wave):
            for t in targets_of[s]:
                answers[(s, t)] = bool(hits[cursor])
                cursor += 1
    return [answers[(s, t)] for s, t in pairs]
