"""Shared plumbing for alternation-based (LCR) indexes.

Every §4.1 index answers queries of the form ``Qr(s, t, (l1 ∪ l2 ∪ ...)*)``
(or the ``+`` variant).  :class:`AlternationIndex` centralises the
constraint handling — parsing, label-set extraction, bitmask translation,
and the empty-path semantics of ``*`` versus ``+`` — so concrete indexes
only implement ``query_mask``.
"""

from __future__ import annotations

from abc import abstractmethod

from repro.core.base import LabelConstrainedIndex
from repro.errors import UnsupportedConstraintError
from repro.traversal.regex import (
    PlusNode,
    RegexNode,
    alternation_label_set,
    parse_constraint,
    regex_to_string,
)

__all__ = ["AlternationIndex"]


class AlternationIndex(LabelConstrainedIndex):
    """Base class for label-constrained (alternation) reachability indexes."""

    def query(self, source: int, target: int, constraint: str | RegexNode) -> bool:
        """Answer an alternation-based path-constrained query.

        ``(…)*`` accepts the empty path, so ``s == t`` is trivially true;
        ``(…)+`` requires at least one edge, so ``s == t`` asks for a
        constrained cycle through ``s``.  Parsed constraints are memoised
        per index, so repeated queries pay only the lookup.
        """
        self._check_query(source, target)
        cache = getattr(self, "_constraint_cache", None)
        if cache is None:
            cache = {}
            self._constraint_cache = cache
        # num_labels in the key invalidates entries when updates introduce
        # labels that an earlier parse dropped as unknown; node constraints
        # key by their canonical rendering (object ids get recycled)
        text = (
            constraint
            if isinstance(constraint, str)
            else regex_to_string(constraint)
        )
        key = (text, self._graph.num_labels)
        cached = cache.get(key)
        if cached is None:
            node = parse_constraint(constraint)
            labels = alternation_label_set(node)
            if labels is None:
                raise UnsupportedConstraintError(
                    f"{self.metadata.name} only supports alternation "
                    f"constraints, got {regex_to_string(node)!r}"
                )
            mask = 0
            for label in labels:
                try:
                    mask |= 1 << self._graph.label_id(label)
                except KeyError:
                    # a label absent from the graph contributes no edges; it
                    # can simply be dropped from the constraint set.
                    continue
            cached = (mask, isinstance(node, PlusNode))
            if len(cache) < 4096:
                cache[key] = cached
        mask, is_plus = cached
        if source == target and not is_plus:
            return True
        require_cycle = source == target
        return self.query_mask(source, target, mask, require_cycle)

    @abstractmethod
    def query_mask(
        self, source: int, target: int, mask: int, require_cycle: bool
    ) -> bool:
        """Exact answer for a label-set bitmask constraint.

        ``require_cycle`` is set for ``s == t`` under ``+``: the answer must
        come from a non-empty constrained cycle through ``source``.
        """
