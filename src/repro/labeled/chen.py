"""Chen & Singh: LCR via recursive spanning-tree decomposition (§4.1.1).

The state-of-the-art tree-based LCR index classifies edges against a
spanning forest, answers the tree-like part with interval labeling
enriched by SPLSs, compresses the reachability carried by the remaining
(non-tree) edges into a *summary graph* over their endpoints — and then
**applies the same decomposition to the summary, recursively**, until the
summary stops shrinking or becomes trivial.  This module implements that
recursion:

* every level is a *mask-labeled* graph (level 0: the input with
  single-label masks; deeper levels: summaries whose edges carry the SPLS
  of a tree path or a crossing edge);
* each level stores a spanning forest with pre/post intervals and
  root-to-vertex **label counts**, so the SPLS of any descending tree
  path is an O(|L|) subtraction — the optimisation inherited from Jin et
  al. and kept valid for mask edges (a mask edge increments the count of
  each label it contains);
* the level's summary nodes are the tails and heads of its non-tree
  edges; summary edges are those non-tree edges plus ``head → tail``
  shortcuts labeled with the connecting tree path's mask;
* the final level (no further shrink, or below the size threshold)
  materialises full SPLS-closure rows, Dijkstra-style.

``Qr(s, t, L')`` at level *i* holds iff the tree path works, or some
non-tree edge ``(u, v)`` fits the budget with ``s`` tree-reaching ``u``
and the *recursive* query at level *i+1* connecting ``v`` to some head
``h`` that tree-reaches ``t``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import ClassVar

from repro.core.base import IndexMetadata
from repro.core.registry import register_labeled
from repro.graphs.labeled import LabeledDiGraph
from repro.labeled.base import AlternationIndex
from repro.labeled.spls import add_to_antichain, antichain_matches
from repro.obs.build import build_phase

__all__ = ["ChenIndex"]

# a mask-labeled graph: adjacency[v] = list of (w, mask)
_MaskAdjacency = list[list[tuple[int, int]]]


@dataclass
class _Level:
    """One decomposition level: tree structures + summary wiring."""

    num_vertices: int
    intervals: list[tuple[int, int]]  # (pre, post) in the spanning forest
    root_counts: list[tuple[int, ...]]  # per-label occurrence counts from root
    non_tree: list[tuple[int, int, int]]  # (tail, head, mask)
    summary_id: dict[int, int]  # level vertex -> next-level vertex id
    heads: list[int]  # level vertices that are heads of non-tree edges
    closure: dict[int, dict[int, list[int]]] = field(default_factory=dict)
    # terminal levels only: vertex -> {vertex -> SPLS antichain}

    def in_subtree(self, a: int, d: int) -> bool:
        return (
            self.intervals[a][0] <= self.intervals[d][0]
            and self.intervals[d][1] <= self.intervals[a][1]
        )

    def tree_mask(self, a: int, d: int) -> int:
        mask = 0
        up, down = self.root_counts[a], self.root_counts[d]
        for label_id, (high, low) in enumerate(zip(down, up)):
            if high > low:
                mask |= 1 << label_id
        return mask

    def tree_descend(self, a: int, d: int, budget: int) -> bool:
        """Whether ``a`` tree-reaches ``d`` using labels within ``budget``."""
        if a == d:
            return True
        return self.in_subtree(a, d) and self.tree_mask(a, d) & ~budget == 0


def _spanning_structures(
    num_vertices: int, adjacency: _MaskAdjacency, num_labels: int
) -> tuple[list[int], list[int], list[tuple[int, int]]]:
    """DFS spanning forest over a mask graph: (parent, parent_mask, intervals)."""
    parent = [-1] * num_vertices
    parent_mask = [0] * num_vertices
    pre = [0] * num_vertices
    post = [0] * num_vertices
    visited = bytearray(num_vertices)
    clock = 0
    for start in range(num_vertices):
        if visited[start]:
            continue
        visited[start] = 1
        clock += 1
        pre[start] = clock
        stack: list[tuple[int, int]] = [(start, 0)]
        while stack:
            v, cursor = stack[-1]
            edges = adjacency[v]
            advanced = False
            while cursor < len(edges):
                w, mask = edges[cursor]
                cursor += 1
                if not visited[w]:
                    visited[w] = 1
                    parent[w] = v
                    parent_mask[w] = mask
                    clock += 1
                    pre[w] = clock
                    stack[-1] = (v, cursor)
                    stack.append((w, 0))
                    advanced = True
                    break
            if advanced:
                continue
            stack.pop()
            clock += 1
            post[v] = clock
    return parent, parent_mask, list(zip(pre, post))


def _closure_rows(
    num_vertices: int, adjacency: _MaskAdjacency
) -> dict[int, dict[int, list[int]]]:
    """Full SPLS closure of a (small) mask graph, Dijkstra-style per source."""
    closure: dict[int, dict[int, list[int]]] = {}
    for source in range(num_vertices):
        rows: dict[int, list[int]] = {}
        heap: list[tuple[int, int, int]] = [
            (mask.bit_count(), mask, w) for w, mask in adjacency[source]
        ]
        heapq.heapify(heap)
        while heap:
            _, mask, v = heapq.heappop(heap)
            antichain = rows.setdefault(v, [])
            if not add_to_antichain(antichain, mask):
                continue
            for w, edge_mask in adjacency[v]:
                new_mask = mask | edge_mask
                kept = rows.get(w, ())
                if not any(k & ~new_mask == 0 for k in kept):
                    heapq.heappush(heap, (new_mask.bit_count(), new_mask, w))
        closure[source] = rows
    return closure


@register_labeled
class ChenIndex(AlternationIndex):
    """Recursive tree decomposition with SPLS-enriched interval labeling."""

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="Chen et al.",
        framework="Tree cover",
        complete=True,
        input_kind="General",
        dynamic="no",
        constraint="Alternation",
    )

    TERMINAL_THRESHOLD = 8

    def __init__(self, graph: LabeledDiGraph, levels: list[_Level]) -> None:
        super().__init__(graph)
        self._levels = levels

    @classmethod
    def build(
        cls,
        graph: LabeledDiGraph,
        terminal_threshold: int = TERMINAL_THRESHOLD,
        **params: object,
    ) -> "ChenIndex":
        num_labels = max(graph.num_labels, 1)
        adjacency: _MaskAdjacency = [
            [(w, 1 << label_id) for w, label_id in graph.out_edges(v)]
            for v in graph.vertices()
        ]
        levels: list[_Level] = []
        num_vertices = graph.num_vertices
        with build_phase("recursive-decomposition") as phase:
            while True:
                level, next_adjacency, next_n = cls._decompose(
                    num_vertices, adjacency, num_labels
                )
                levels.append(level)
                no_summary = next_n == 0
                no_shrink = next_n >= num_vertices
                if no_summary:
                    break
                if no_shrink or next_n <= terminal_threshold:
                    with build_phase("terminal-closure", vertices=next_n):
                        level.closure = _closure_rows(next_n, next_adjacency)
                    # re-express the closure over this level's own vertex ids
                    break
                adjacency = next_adjacency
                num_vertices = next_n
            phase.annotate(levels=len(levels))
        # the terminal closure (if any) lives on the ids of the *next*
        # level; record it on a sentinel terminal level for uniform access
        if levels and levels[-1].closure:
            terminal = levels[-1]
            levels.append(
                _Level(
                    num_vertices=len(terminal.summary_id),
                    intervals=[],
                    root_counts=[],
                    non_tree=[],
                    summary_id={},
                    heads=[],
                    closure=terminal.closure,
                )
            )
            terminal.closure = {}
        return cls(graph, levels)

    @staticmethod
    def _decompose(
        num_vertices: int, adjacency: _MaskAdjacency, num_labels: int
    ) -> tuple[_Level, _MaskAdjacency, int]:
        parent, parent_mask, intervals = _spanning_structures(
            num_vertices, adjacency, num_labels
        )
        # root-to-vertex label counts, parents first (pre-order)
        root_counts: list[tuple[int, ...]] = [()] * num_vertices
        for v in sorted(range(num_vertices), key=lambda x: intervals[x][0]):
            if parent[v] == -1:
                root_counts[v] = (0,) * num_labels
            else:
                counts = list(root_counts[parent[v]])
                mask = parent_mask[v]
                while mask:
                    label_id = (mask & -mask).bit_length() - 1
                    mask &= mask - 1
                    counts[label_id] += 1
                root_counts[v] = tuple(counts)
        tree_pairs = {
            (parent[v], v, parent_mask[v]) for v in range(num_vertices) if parent[v] != -1
        }
        non_tree: list[tuple[int, int, int]] = []
        for u in range(num_vertices):
            for w, mask in adjacency[u]:
                if (u, w, mask) not in tree_pairs:
                    non_tree.append((u, w, mask))
                else:
                    # only the first occurrence is the tree edge
                    tree_pairs.discard((u, w, mask))
        summary_vertices = sorted(
            {u for u, _w, _m in non_tree} | {w for _u, w, _m in non_tree}
        )
        summary_id = {v: i for i, v in enumerate(summary_vertices)}
        heads = sorted({w for _u, w, _m in non_tree})

        def in_subtree(a: int, d: int) -> bool:
            return (
                intervals[a][0] <= intervals[d][0]
                and intervals[d][1] <= intervals[a][1]
            )

        def tree_mask(a: int, d: int) -> int:
            mask = 0
            up, down = root_counts[a], root_counts[d]
            for label_id in range(num_labels):
                if down[label_id] > up[label_id]:
                    mask |= 1 << label_id
            return mask

        next_adjacency: _MaskAdjacency = [[] for _ in summary_vertices]
        for u, w, mask in non_tree:
            next_adjacency[summary_id[u]].append((summary_id[w], mask))
        tails = sorted({u for u, _w, _m in non_tree})
        for h in heads:
            for u in tails:
                if h != u and in_subtree(h, u):
                    next_adjacency[summary_id[h]].append(
                        (summary_id[u], tree_mask(h, u))
                    )
        level = _Level(
            num_vertices=num_vertices,
            intervals=intervals,
            root_counts=root_counts,
            non_tree=non_tree,
            summary_id=summary_id,
            heads=heads,
        )
        return level, next_adjacency, len(summary_vertices)

    # -- querying ------------------------------------------------------------
    def _query_level(self, depth: int, source: int, target: int, mask: int) -> bool:
        level = self._levels[depth]
        if level.closure:
            # terminal closure level: direct row lookup (ids are its own)
            if source == target:
                return True
            antichain = level.closure.get(source, {}).get(target)
            return antichain is not None and antichain_matches(antichain, mask)
        if level.tree_descend(source, target, mask):
            return True
        next_depth = depth + 1
        has_next = next_depth < len(self._levels)
        exits = [
            h for h in level.heads if level.tree_descend(h, target, mask)
        ]
        if not exits:
            return False
        exit_ids = {level.summary_id[h] for h in exits}
        for u, v, edge_mask in level.non_tree:
            if edge_mask & ~mask:
                continue
            if not level.tree_descend(source, u, mask):
                continue
            v_id = level.summary_id[v]
            if v_id in exit_ids:
                return True
            if has_next:
                for h_id in exit_ids:
                    if self._query_level(next_depth, v_id, h_id, mask):
                        return True
        return False

    def query_mask(
        self, source: int, target: int, mask: int, require_cycle: bool
    ) -> bool:
        if require_cycle:
            # a non-empty cycle must cross at least one non-tree edge
            level = self._levels[0]
            for u, v, edge_mask in level.non_tree:
                if edge_mask & ~mask:
                    continue
                if not level.tree_descend(source, u, mask):
                    continue
                if v == source:
                    return True
                if self._query_level(0, v, source, mask):
                    return True
            return False
        return self._query_level(0, source, target, mask)

    @property
    def num_levels(self) -> int:
        """Decomposition depth (including any terminal closure level)."""
        return len(self._levels)

    def size_in_entries(self) -> int:
        """Intervals + label counts + non-tree lists + terminal closure masks."""
        total = 0
        for level in self._levels:
            total += level.num_vertices  # one interval per vertex
            total += sum(len(c) for c in level.root_counts)
            total += len(level.non_tree)
            total += sum(
                len(antichain)
                for rows in level.closure.values()
                for antichain in rows.values()
            )
        return total
