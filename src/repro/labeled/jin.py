"""Jin et al.: the first LCR index — spanning tree + partial GTC (§4.1.1).

Paths are split into two cases: (1) the path starts with a descending run
of spanning-tree edges, or (2) it immediately leaves the tree.  The index
stores:

* a spanning forest with **interval labeling** (the paper's first
  optimisation — O(1) "is ``t`` in ``s``'s subtree" tests);
* per-vertex **root-to-vertex label counts** (the second optimisation —
  the SPLS of a tree path ``s → t`` is the set of labels whose count
  strictly grows between ``s`` and ``t``);
* a **partial GTC**: a full single-source GTC row from the *head of every
  non-tree edge*, which is exactly the reachability information case (2)
  paths need.

``Qr(s, t, L')`` then holds iff the pure tree path works, or some non-tree
edge ``(u, v, l)`` exists with ``s`` tree-reaching ``u`` within ``L'``,
``l ∈ L'``, and the partial GTC certifying ``v → t`` within ``L'``.
"""

from __future__ import annotations

from typing import ClassVar

from repro.core.base import IndexMetadata
from repro.core.registry import register_labeled
from repro.graphs.labeled import LabeledDiGraph
from repro.labeled.base import AlternationIndex
from repro.labeled.gtc import single_source_gtc
from repro.labeled.spls import antichain_matches
from repro.obs.build import build_phase

__all__ = ["JinIndex", "labeled_spanning_forest"]


def labeled_spanning_forest(
    graph: LabeledDiGraph,
) -> tuple[list[int], list[int], list[tuple[int, int]]]:
    """A DFS spanning forest of a labeled graph.

    Returns ``(parent, parent_label, intervals)`` where ``intervals`` are
    pre/post numbers: ``t`` is in ``s``'s subtree iff
    ``pre[s] <= pre[t] and post[t] <= post[s]``.
    """
    n = graph.num_vertices
    parent = [-1] * n
    parent_label = [-1] * n
    pre = [0] * n
    post = [0] * n
    visited = bytearray(n)
    clock = 0
    for start in range(n):
        if visited[start]:
            continue
        visited[start] = 1
        clock += 1
        pre[start] = clock
        stack: list[tuple[int, int]] = [(start, 0)]
        while stack:
            v, cursor = stack[-1]
            edges = graph.out_edges(v)
            advanced = False
            while cursor < len(edges):
                w, label_id = edges[cursor]
                cursor += 1
                if not visited[w]:
                    visited[w] = 1
                    parent[w] = v
                    parent_label[w] = label_id
                    clock += 1
                    pre[w] = clock
                    stack[-1] = (v, cursor)
                    stack.append((w, 0))
                    advanced = True
                    break
            if advanced:
                continue
            stack.pop()
            clock += 1
            post[v] = clock
    intervals = list(zip(pre, post))
    return parent, parent_label, intervals


@register_labeled
class JinIndex(AlternationIndex):
    """Tree-based LCR index with a partial GTC for non-tree paths."""

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="Jin et al.",
        framework="Tree cover",
        complete=True,
        input_kind="General",
        dynamic="no",
        constraint="Alternation",
    )

    def __init__(
        self,
        graph: LabeledDiGraph,
        intervals: list[tuple[int, int]],
        root_counts: list[tuple[int, ...]],
        non_tree_edges: list[tuple[int, int, int]],
        partial_rows: dict[int, dict[int, list[int]]],
        partial_cycles: dict[int, list[int]],
    ) -> None:
        super().__init__(graph)
        self._intervals = intervals
        self._root_counts = root_counts
        self._non_tree = non_tree_edges
        self._rows = partial_rows
        self._cycles = partial_cycles

    @classmethod
    def build(cls, graph: LabeledDiGraph, **params: object) -> "JinIndex":
        with build_phase("labeled-spanning-forest"):
            parent, parent_label, intervals = labeled_spanning_forest(graph)
        num_labels = max(graph.num_labels, 1)
        # root-to-vertex label occurrence counts (second optimisation)
        with build_phase("root-label-counts"):
            root_counts: list[tuple[int, ...]] = [()] * graph.num_vertices
            order = sorted(graph.vertices(), key=lambda v: intervals[v][0])
            for v in order:  # parents have smaller pre numbers, so they're done
                if parent[v] == -1:
                    root_counts[v] = (0,) * num_labels
                else:
                    counts = list(root_counts[parent[v]])
                    counts[parent_label[v]] += 1
                    root_counts[v] = tuple(counts)
        with build_phase("non-tree-closures") as phase:
            tree_pairs = {
                (u, v, label_id)
                for v in graph.vertices()
                if (u := parent[v]) != -1
                for label_id in (parent_label[v],)
            }
            non_tree = [
                (u, v, graph.label_id(label))
                for u, v, label in graph.edges()
                if (u, v, graph.label_id(label)) not in tree_pairs
            ]
            partial_rows: dict[int, dict[int, list[int]]] = {}
            partial_cycles: dict[int, list[int]] = {}
            for _u, head, _label in non_tree:
                if head not in partial_rows:
                    row, cycles = single_source_gtc(graph, head)
                    partial_rows[head] = row
                    partial_cycles[head] = cycles
            phase.annotate(non_tree=len(non_tree))
        return cls(graph, intervals, root_counts, non_tree, partial_rows, partial_cycles)

    # -- tree primitives --------------------------------------------------------
    def _in_subtree(self, ancestor: int, descendant: int) -> bool:
        pre_a, post_a = self._intervals[ancestor]
        pre_d, post_d = self._intervals[descendant]
        return pre_a <= pre_d and post_d <= post_a

    def _tree_path_mask(self, ancestor: int, descendant: int) -> int:
        """SPLS of the tree path (labels whose root counts strictly grow)."""
        mask = 0
        up = self._root_counts[ancestor]
        down = self._root_counts[descendant]
        for label_id, (a, d) in enumerate(zip(up, down)):
            if d > a:
                mask |= 1 << label_id
        return mask

    def query_mask(
        self, source: int, target: int, mask: int, require_cycle: bool
    ) -> bool:
        # case (1): the pure descending tree path
        if not require_cycle and self._in_subtree(source, target):
            if self._tree_path_mask(source, target) & ~mask == 0:
                return True
        # case (2): tree-descend to a non-tree edge tail, hop, then GTC
        for u, v, label_id in self._non_tree:
            if not (1 << label_id) & mask:
                continue
            if not (source == u or self._in_subtree(source, u)):
                continue
            if source != u and self._tree_path_mask(source, u) & ~mask != 0:
                continue
            if v == target:
                if not require_cycle or target == source:
                    return True
            if require_cycle:
                row = self._rows[v].get(target)
                if row is not None and antichain_matches(row, mask):
                    return True
                if v == target and antichain_matches(self._cycles[v], mask):
                    return True
            else:
                row = self._rows[v].get(target)
                if row is not None and antichain_matches(row, mask):
                    return True
        return False

    def size_in_entries(self) -> int:
        """Intervals + label counts + non-tree list + partial GTC masks."""
        counts = sum(len(c) for c in self._root_counts)
        gtc_entries = sum(
            len(antichain) for row in self._rows.values() for antichain in row.values()
        )
        gtc_entries += sum(len(c) for c in self._cycles.values())
        return self._graph.num_vertices + counts + len(self._non_tree) + gtc_entries
