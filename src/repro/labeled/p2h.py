"""P2H+: pruned 2-hop labeling for label-constrained reachability (§4.1.3).

Peng et al. extend the 2-hop framework with SPLSs: every label entry is a
``(hop, label-set mask)`` pair, and ``Qr(s, t, L')`` holds iff some hop
``h`` has masks ``m1 ∈ L_out(s)[h]`` and ``m2 ∈ L_in(t)[h]`` with
``m1 ∪ m2 ⊆ L'`` (or an endpoint is itself the hop).  Indexing runs
forward/backward label-set searches from vertices in decreasing-degree
order with two prunings:

* **rank pruning** — a search from hop ``h`` never expands through a
  vertex ranked before ``h`` (that vertex's own passes cover those paths);
* **coverage pruning** — a state ``(v, m)`` already answerable from the
  current labels is neither recorded nor expanded; within a pass this
  doubles as antichain dominance, which is how P2H+ guarantees a
  redundancy-free index.

States are expanded in order of distinct-label count, so recorded masks
are subset-minimal.  Self-cycle antichains per hop make ``(…)+``
queries with ``s == t`` answerable from the index alone.
"""

from __future__ import annotations

import heapq
from typing import ClassVar

from repro.core.base import IndexMetadata
from repro.core.registry import register_labeled
from repro.graphs.labeled import LabeledDiGraph
from repro.labeled.base import AlternationIndex
from repro.labeled.spls import add_to_antichain, antichain_matches
from repro.obs.build import build_phase

__all__ = ["P2HIndex", "LabeledTwoHopLabels"]


class LabeledTwoHopLabels:
    """Per-vertex hop → SPLS-antichain maps, plus per-hop cycle antichains."""

    __slots__ = ("l_in", "l_out", "cycles")

    def __init__(self, num_vertices: int) -> None:
        self.l_in: list[dict[int, list[int]]] = [{} for _ in range(num_vertices)]
        self.l_out: list[dict[int, list[int]]] = [{} for _ in range(num_vertices)]
        self.cycles: list[list[int]] = [[] for _ in range(num_vertices)]

    def covered(self, source: int, target: int, mask: int) -> bool:
        """The P2H+ query rule for a label-set mask."""
        l_out = self.l_out[source]
        l_in = self.l_in[target]
        direct = l_out.get(target)
        if direct is not None and antichain_matches(direct, mask):
            return True
        direct = l_in.get(source)
        if direct is not None and antichain_matches(direct, mask):
            return True
        for hop, out_masks in l_out.items():
            in_masks = l_in.get(hop)
            if in_masks is None:
                continue
            for m1 in out_masks:
                if m1 & ~mask:
                    continue
                for m2 in in_masks:
                    if (m1 | m2) & ~mask == 0:
                        return True
        return False

    def covered_below(
        self, rank: dict[int, int], source: int, target: int, mask: int, limit: int
    ) -> bool:
        """The query rule restricted to hops ranked before ``limit``.

        The labeling/maintenance passes prune against this restricted rule
        only — the labeled analogue of
        :func:`repro.plain.pruned.covered_below`, and for the same reason:
        higher-ranked coverage can disappear in a later deletion without
        the pruned hop being re-run.
        """
        l_out = self.l_out[source]
        l_in = self.l_in[target]
        direct = l_out.get(target)
        if direct is not None and rank[target] < limit and antichain_matches(
            direct, mask
        ):
            return True
        direct = l_in.get(source)
        if direct is not None and rank[source] < limit and antichain_matches(
            direct, mask
        ):
            return True
        for hop, out_masks in l_out.items():
            if rank[hop] >= limit:
                continue
            in_masks = l_in.get(hop)
            if in_masks is None:
                continue
            for m1 in out_masks:
                if m1 & ~mask:
                    continue
                for m2 in in_masks:
                    if (m1 | m2) & ~mask == 0:
                        return True
        return False

    def cycle_covered(self, vertex: int, mask: int) -> bool:
        """Whether a non-empty constrained cycle through ``vertex`` is indexed."""
        if antichain_matches(self.cycles[vertex], mask):
            return True
        for hop, out_masks in self.l_out[vertex].items():
            in_masks = self.l_in[vertex].get(hop)
            if in_masks is None:
                continue
            for m1 in out_masks:
                if m1 & ~mask:
                    continue
                for m2 in in_masks:
                    if (m1 | m2) & ~mask == 0:
                        return True
        return False

    def size_in_entries(self) -> int:
        """Total stored (hop, mask) pairs plus cycle masks."""
        total = sum(len(a) for d in self.l_in for a in d.values())
        total += sum(len(a) for d in self.l_out for a in d.values())
        total += sum(len(c) for c in self.cycles)
        return total

    def remove_hop(self, hop: int) -> None:
        """Strip every entry referring to ``hop`` (dynamic maintenance)."""
        for d in self.l_in:
            d.pop(hop, None)
        for d in self.l_out:
            d.pop(hop, None)
        self.cycles[hop] = []


def labeled_degree_order(graph: LabeledDiGraph) -> list[int]:
    """Vertices by decreasing total degree (ties by id)."""
    return sorted(
        graph.vertices(),
        key=lambda v: (-(graph.in_degree(v) + graph.out_degree(v)), v),
    )


def labeled_resume_forward(
    graph: LabeledDiGraph,
    labels: LabeledTwoHopLabels,
    rank: dict[int, int],
    hop: int,
    seeds: list[tuple[int, int]],
) -> None:
    """(Re)run hop's forward label-set search from ``seeds`` (vertex, mask)."""
    hop_rank = rank[hop]
    heap = [(mask.bit_count(), mask, v) for v, mask in seeds]
    heapq.heapify(heap)
    while heap:
        _, mask, v = heapq.heappop(heap)
        if v == hop:
            if not add_to_antichain(labels.cycles[hop], mask):
                continue
        else:
            if rank[v] < hop_rank:
                continue  # that vertex's own passes cover paths through it
            if labels.covered_below(rank, hop, v, mask, hop_rank):
                continue
            if not add_to_antichain(labels.l_in[v].setdefault(hop, []), mask):
                continue  # dominated by this pass's own earlier states
        for w, label_id in graph.out_edges(v):
            new_mask = mask | (1 << label_id)
            heapq.heappush(heap, (new_mask.bit_count(), new_mask, w))


def labeled_resume_backward(
    graph: LabeledDiGraph,
    labels: LabeledTwoHopLabels,
    rank: dict[int, int],
    hop: int,
    seeds: list[tuple[int, int]],
) -> None:
    """(Re)run hop's backward label-set search from ``seeds``."""
    hop_rank = rank[hop]
    heap = [(mask.bit_count(), mask, v) for v, mask in seeds]
    heapq.heapify(heap)
    while heap:
        _, mask, v = heapq.heappop(heap)
        if v == hop:
            if not add_to_antichain(labels.cycles[hop], mask):
                continue
        else:
            if rank[v] < hop_rank:
                continue
            if labels.covered_below(rank, v, hop, mask, hop_rank):
                continue
            if not add_to_antichain(labels.l_out[v].setdefault(hop, []), mask):
                continue
        for u, label_id in graph.in_edges(v):
            new_mask = mask | (1 << label_id)
            heapq.heappush(heap, (new_mask.bit_count(), new_mask, u))


def build_labeled_labels(
    graph: LabeledDiGraph, order: list[int]
) -> tuple[LabeledTwoHopLabels, dict[int, int]]:
    """Run the full P2H+ labeling over ``order``."""
    labels = LabeledTwoHopLabels(graph.num_vertices)
    rank = {v: i for i, v in enumerate(order)}
    for hop in order:
        forward_seeds = [(w, 1 << label_id) for w, label_id in graph.out_edges(hop)]
        labeled_resume_forward(graph, labels, rank, hop, forward_seeds)
        backward_seeds = [(u, 1 << label_id) for u, label_id in graph.in_edges(hop)]
        labeled_resume_backward(graph, labels, rank, hop, backward_seeds)
    return labels, rank


@register_labeled
class P2HIndex(AlternationIndex):
    """P2H+: complete pruned 2-hop labels with SPLS masks."""

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="P2H+",
        framework="2-Hop",
        complete=True,
        input_kind="General",
        dynamic="no",
        constraint="Alternation",
    )

    def __init__(
        self, graph: LabeledDiGraph, labels: LabeledTwoHopLabels, rank: dict[int, int]
    ) -> None:
        super().__init__(graph)
        self._labels = labels
        self._rank = rank

    @classmethod
    def build(cls, graph: LabeledDiGraph, **params: object) -> "P2HIndex":
        with build_phase("labeled-pruned-labeling") as phase:
            labels, rank = build_labeled_labels(graph, labeled_degree_order(graph))
            phase.annotate(entries=labels.size_in_entries())
        return cls(graph, labels, rank)

    @property
    def labels(self) -> LabeledTwoHopLabels:
        """The underlying labeled 2-hop label sets."""
        return self._labels

    def query_mask(
        self, source: int, target: int, mask: int, require_cycle: bool
    ) -> bool:
        if require_cycle:
            return self._labels.cycle_covered(source, mask)
        return self._labels.covered(source, target, mask)

    def size_in_entries(self) -> int:
        return self._labels.size_in_entries()
