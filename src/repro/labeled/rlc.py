"""The RLC index: 2-hop labels for recursive label-concatenated queries (§4.2).

Zhang et al.'s index is the only one supporting concatenation constraints
``(l1 · … · lk)*``.  It keeps the 2-hop skeleton — every vertex stores
``(hop, path-summary)`` entries — but where alternation indexes record
label *sets*, RLC entries record the *minimum-repeat structure* of the
path's label sequence, bounded by the concatenation length κ given at
build time (the paper's rule for taming infinitely many MRs on cyclic
graphs).

A pair ``(s, t)`` satisfies ``(ρ)*`` through hop ``h`` iff some first-leg
entry of ``s`` and second-leg entry of ``t`` under ``h`` agree on the
phase at which the legs meet (see :mod:`repro.labeled.kleene`).  MRs are
not transitive in general — the reason the paper splits indexing into a
compute-then-select two-phase process — which here surfaces as the
phase-agreement test replacing plain set union.

Indexing runs forward and backward summary searches from every vertex in
decreasing-degree order, pruned by vertex rank (paths through a
lower-ranked vertex are that vertex's responsibility), with per-vertex
summary deduplication bounding the state space.
"""

from __future__ import annotations

from collections import deque
from typing import ClassVar

from repro.core.base import IndexMetadata, LabelConstrainedIndex
from repro.core.registry import register_labeled
from repro.errors import UnsupportedConstraintError
from repro.graphs.labeled import LabeledDiGraph
from repro.obs.build import build_phase
from repro.labeled.kleene import (
    Entry,
    match_first_leg,
    match_second_leg,
    step_summary,
)
from repro.traversal.regex import (
    PlusNode,
    RegexNode,
    concatenation_sequence,
    parse_constraint,
    regex_to_string,
)

__all__ = ["RLCIndex"]


@register_labeled
class RLCIndex(LabelConstrainedIndex):
    """2-hop index over minimum-repeat path summaries."""

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="RLC",
        framework="2-Hop",
        complete=True,
        input_kind="General",
        dynamic="no",
        constraint="Concatenation",
    )

    DEFAULT_MAX_PERIOD = 3

    def __init__(
        self,
        graph: LabeledDiGraph,
        max_period: int,
        l_in: list[dict[int, set[Entry]]],
        l_out: list[dict[int, set[Entry]]],
        cycles: list[set[Entry]],
    ) -> None:
        super().__init__(graph)
        self._max_period = max_period
        self._l_in = l_in
        self._l_out = l_out
        self._cycles = cycles

    @classmethod
    def build(
        cls,
        graph: LabeledDiGraph,
        max_period: int = DEFAULT_MAX_PERIOD,
        **params: object,
    ) -> "RLCIndex":
        if max_period < 1:
            raise ValueError(f"max_period must be >= 1, got {max_period}")
        n = graph.num_vertices
        with build_phase("degree-order"):
            order = sorted(
                graph.vertices(),
                key=lambda v: (-(graph.in_degree(v) + graph.out_degree(v)), v),
            )
            rank = {v: i for i, v in enumerate(order)}
        with build_phase("summary-searches", max_period=max_period):
            l_in: list[dict[int, set[Entry]]] = [{} for _ in range(n)]
            l_out: list[dict[int, set[Entry]]] = [{} for _ in range(n)]
            cycles: list[set[Entry]] = [set() for _ in range(n)]
            for hop in order:
                cls._explore(graph, hop, rank, max_period, l_in, cycles, forward=True)
                cls._explore(graph, hop, rank, max_period, l_out, cycles, forward=False)
        return cls(graph, max_period, l_in, l_out, cycles)

    @staticmethod
    def _explore(
        graph: LabeledDiGraph,
        hop: int,
        rank: dict[int, int],
        max_period: int,
        store: list[dict[int, set[Entry]]],
        cycles: list[set[Entry]],
        forward: bool,
    ) -> None:
        """One summary search from ``hop`` (forward = second legs)."""
        hop_rank = rank[hop]
        start: Entry = ("S", ())
        seen: set[tuple[int, Entry]] = {(hop, start)}
        queue: deque[tuple[int, Entry]] = deque(((hop, start),))
        while queue:
            v, entry = queue.popleft()
            edges = graph.out_edges(v) if forward else graph.in_edges(v)
            for w, label_id in edges:
                nxt = step_summary(entry, label_id, max_period)
                if nxt is None:
                    continue
                state = (w, nxt)
                if state in seen:
                    continue
                seen.add(state)
                if w == hop:
                    if forward:  # record constrained cycles once, forward only
                        cycles[hop].add(nxt)
                    queue.append(state)
                    continue
                if rank[w] < hop_rank:
                    continue  # w's own passes own the paths through it
                if forward or nxt[0] != "S":
                    recorded = nxt
                else:
                    # backward searches build the reversed sequence; explicit
                    # short entries are stored forward-oriented so the
                    # matchers read them uniformly (periodic summaries keep
                    # the reversed base — match_first_leg expects it).
                    recorded = ("S", tuple(reversed(nxt[1])))
                store[w].setdefault(hop, set()).add(recorded)
                queue.append(state)

    def query(self, source: int, target: int, constraint: str | RegexNode) -> bool:
        """Answer a concatenation-based query ``(l1·…·lk)*`` or ``+``.

        Parsed constraints are memoised per index, so repeated queries pay
        only a dictionary lookup.
        """
        self._check_query(source, target)
        cache = getattr(self, "_constraint_cache", None)
        if cache is None:
            cache = {}
            self._constraint_cache = cache
        text = (
            constraint
            if isinstance(constraint, str)
            else regex_to_string(constraint)
        )
        key = (text, self._graph.num_labels)
        cached = cache.get(key)
        if cached is None:
            node = parse_constraint(constraint)
            seq = concatenation_sequence(node)
            if seq is None:
                raise UnsupportedConstraintError(
                    f"RLC only supports concatenation constraints, got "
                    f"{regex_to_string(node)!r}"
                )
            if len(seq) > self._max_period:
                raise UnsupportedConstraintError(
                    f"constraint period {len(seq)} exceeds the index bound "
                    f"max_period={self._max_period}; rebuild with a larger bound"
                )
            try:
                rho = tuple(self._graph.label_id(label) for label in seq)
            except KeyError:
                rho = None  # a label absent from the graph has no edges
            cached = (rho, isinstance(node, PlusNode))
            if len(cache) < 4096:
                cache[key] = cached
        rho, require_nonempty = cached
        if source == target and not require_nonempty:
            return True
        if rho is None:
            return False
        if source == target:
            return self._cycle_query(source, rho)
        return self._pair_query(source, target, rho)

    def _pair_query(self, source: int, target: int, rho: tuple[int, ...]) -> bool:
        out_entries = self._l_out[source]
        in_entries = self._l_in[target]
        # hop == source: the first leg is empty (phase 0)
        direct = in_entries.get(source)
        if direct is not None and any(
            match_second_leg(e, rho) == 0 for e in direct
        ):
            return True
        # hop == target: the second leg is empty, first leg must end at 0
        direct = out_entries.get(target)
        if direct is not None and any(
            match_first_leg(e, rho) == 0 for e in direct
        ):
            return True
        for hop, first_entries in out_entries.items():
            second_entries = in_entries.get(hop)
            if not second_entries:
                continue
            ends = {match_first_leg(e, rho) for e in first_entries}
            ends.discard(None)
            if not ends:
                continue
            for e in second_entries:
                r = match_second_leg(e, rho)
                if r is not None and r in ends:
                    return True
        return False

    def _cycle_query(self, vertex: int, rho: tuple[int, ...]) -> bool:
        # a complete cycle recorded during the vertex's own pass
        if any(match_second_leg(e, rho) == 0 for e in self._cycles[vertex]):
            return True
        # or composed through another hop
        return self._pair_query(vertex, vertex, rho)

    def size_in_entries(self) -> int:
        """Total stored (hop, summary) entries plus cycle summaries."""
        total = sum(len(s) for d in self._l_in for s in d.values())
        total += sum(len(s) for d in self._l_out for s in d.values())
        total += sum(len(c) for c in self._cycles)
        return total

    @property
    def max_period(self) -> int:
        """The build-time bound on supported concatenation lengths."""
        return self._max_period
