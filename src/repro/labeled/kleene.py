"""Minimum-repeat machinery for concatenation-based queries (§4.2).

A recursive label-concatenated (RLC) query ``Qr(s, t, (l1·…·lk)*)`` asks
for an ``s``-``t`` path whose label sequence is a whole number of repeats
of ``ρ = l1…lk``.  The RLC index decomposes such a path at a hop vertex
``h`` into ``σ1`` (``s → h``) and ``σ2`` (``h → t``) with

* ``σ1[i] = ρ[i mod p]``           (aligned from phase 0), and
* ``σ2[i] = ρ[(r + i) mod p]``     where ``r = |σ1| mod p``, with
  ``r + |σ2| ≡ 0 (mod p)``        (the repeats close at the end).

Both conditions depend only on a *bounded summary* of a path's label
sequence: the explicit sequence while it is shorter than the index's
period bound κ, and afterwards the set of ``(base, length mod p)`` pairs
for every period ``p ≤ κ`` the sequence is periodic under — the
"minimum repeats computed under the guidance of the concatenation length"
of the paper.  This module implements those summaries and the query-time
alignment tests.
"""

from __future__ import annotations

__all__ = [
    "minimum_repeat",
    "is_periodic",
    "periodic_summary",
    "step_summary",
    "match_second_leg",
    "match_first_leg",
]

Seq = tuple[int, ...]
# an entry is ("S", explicit-sequence) or ("A", frozenset of (base, len mod p))
Entry = tuple[str, object]


def minimum_repeat(seq: Seq) -> Seq:
    """The shortest ``ρ`` with ``seq = ρ^i`` (the MR of §4.2)."""
    n = len(seq)
    for p in range(1, n + 1):
        if n % p == 0 and all(seq[i] == seq[i % p] for i in range(n)):
            return seq[:p]
    return seq


def is_periodic(seq: Seq, period: int) -> bool:
    """Whether ``seq[i] == seq[i mod period]`` for all positions."""
    return all(seq[i] == seq[i % period] for i in range(len(seq)))


def periodic_summary(seq: Seq, max_period: int) -> frozenset[tuple[Seq, int]]:
    """The ``(base, length mod p)`` pairs for every live period ``p ≤ κ``."""
    pairs = set()
    for p in range(1, max_period + 1):
        if p <= len(seq) and is_periodic(seq, p):
            pairs.add((seq[:p], len(seq) % p))
    return frozenset(pairs)


def step_summary(entry: Entry, label: int, max_period: int) -> Entry | None:
    """Extend a path summary by one appended label; None when dead.

    Short sequences stay explicit until they reach κ labels, at which point
    they collapse into their periodic summary; summaries advance each live
    ``(base, c)`` pair whose expected next label matches.
    """
    kind, payload = entry
    if kind == "S":
        seq: Seq = payload + (label,)  # type: ignore[operator]
        if len(seq) < max_period:
            return ("S", seq)
        summary = periodic_summary(seq, max_period)
        if not summary:
            return None
        return ("A", summary)
    alive = frozenset(
        (base, (c + 1) % len(base))
        for base, c in payload  # type: ignore[union-attr]
        if base[c] == label
    )
    if not alive:
        return None
    return ("A", alive)


def _explicit_alignment(seq: Seq, rho: Seq, start_phase: int) -> bool:
    p = len(rho)
    return all(seq[i] == rho[(start_phase + i) % p] for i in range(len(seq)))


def match_second_leg(entry: Entry, rho: Seq) -> int | None:
    """Required start phase ``r`` for a forward (``h → t``) entry, or None.

    The leg must close the repeats, so ``r = (-|σ2|) mod p``; the entry
    matches when its recorded sequence/summary is consistent with ``ρ``
    read from that phase.
    """
    p = len(rho)
    kind, payload = entry
    if kind == "S":
        seq: Seq = payload  # type: ignore[assignment]
        r = (-len(seq)) % p
        if _explicit_alignment(seq, rho, r):
            return r
        return None
    for base, c in payload:  # type: ignore[union-attr]
        if len(base) != p:
            continue
        r = (p - c) % p
        if all(base[m] == rho[(r + m) % p] for m in range(p)):
            return r
    return None


def match_first_leg(entry: Entry, rho: Seq) -> int | None:
    """End phase ``r`` for a backward (``s → h``) entry, or None.

    First legs are aligned from phase 0, so ``r = |σ1| mod p``.  Explicit
    entries store the sequence in forward orientation; summaries store the
    *reversed* sequence's base (backward searches prepend labels), so the
    alignment test reads ``ρ`` backwards from the end phase.
    """
    p = len(rho)
    kind, payload = entry
    if kind == "S":
        seq: Seq = payload  # type: ignore[assignment]
        if _explicit_alignment(seq, rho, 0):
            return len(seq) % p
        return None
    for base, c in payload:  # type: ignore[union-attr]
        if len(base) != p:
            continue
        # base is the reversed sequence's period; c = |σ1| mod p
        if all(base[m] == rho[(c - 1 - m) % p] for m in range(p)):
            return c
    return None
