"""Path-constrained reachability indexes (§4, Table 2 of the survey).

Importing this package registers every index with
:mod:`repro.core.registry`, from which the Table 2 taxonomy is
regenerated.
"""

from repro.labeled.base import AlternationIndex
from repro.labeled.chen import ChenIndex
from repro.labeled.dlcr import DLCRIndex
from repro.labeled.gtc import GTCIndex, single_source_gtc
from repro.labeled.jin import JinIndex
from repro.labeled.landmark import LandmarkIndex
from repro.labeled.lcr_filter import LCRFilterIndex
from repro.labeled.p2h import P2HIndex
from repro.labeled.rlc import RLCIndex
from repro.labeled.zou import ZouIndex

__all__ = [
    "AlternationIndex",
    "ChenIndex",
    "DLCRIndex",
    "GTCIndex",
    "single_source_gtc",
    "JinIndex",
    "LandmarkIndex",
    "P2HIndex",
    "RLCIndex",
    "ZouIndex",
    # §5 extension (not a Table 2 row; see DESIGN.md)
    "LCRFilterIndex",
]
