"""Sufficient path-label sets (SPLS) — the algebra of §4.1.

Jin et al.'s two foundations, used by every alternation-based index here:

1. **Redundancy by subset** — if two ``s``-``t`` paths have label sets
   ``S1 ⊆ S2``, recording ``S1`` suffices: any alternation constraint
   satisfied by ``S2`` is satisfied by ``S1``.  The useful label sets of a
   vertex pair therefore form a *subset-minimal antichain*.
2. **Transitivity by cross product** — the SPLSs of ``s → t`` paths through
   ``u`` are the pairwise unions of the ``s → u`` and ``u → t`` SPLSs.

Label sets are int bitmasks over the graph's interned label ids, so both
operations reduce to ``&``/``|`` arithmetic.
"""

from __future__ import annotations

from collections.abc import Iterable

__all__ = [
    "is_subset",
    "minimize_antichain",
    "add_to_antichain",
    "antichain_cross_product",
    "antichain_matches",
]


def is_subset(small: int, big: int) -> bool:
    """Whether label-set mask ``small`` ⊆ ``big``."""
    return small & ~big == 0


def minimize_antichain(masks: Iterable[int]) -> list[int]:
    """Reduce a collection of label-set masks to its subset-minimal antichain."""
    # sorting by popcount lets a single forward pass suffice: a mask can
    # only be dominated by one with fewer or equal bits seen earlier.
    result: list[int] = []
    for mask in sorted(set(masks), key=int.bit_count):
        if not any(kept & ~mask == 0 for kept in result):
            result.append(mask)
    return result


def add_to_antichain(antichain: list[int], mask: int) -> bool:
    """Insert ``mask`` into a minimal antichain in place.

    Returns False when ``mask`` is dominated (a recorded subset exists);
    otherwise removes the masks ``mask`` dominates, appends it, and returns
    True.  This is the survey's redundancy rule applied online.
    """
    for kept in antichain:
        if kept & ~mask == 0:
            return False
    antichain[:] = [kept for kept in antichain if mask & ~kept != 0]
    antichain.append(mask)
    return True


def antichain_cross_product(left: Iterable[int], right: Iterable[int]) -> list[int]:
    """The §4.1 transitivity rule: minimal antichain of pairwise unions."""
    return minimize_antichain(a | b for a in left for b in right)


def antichain_matches(antichain: Iterable[int], allowed: int) -> bool:
    """Whether some recorded SPLS fits inside the constraint mask ``allowed``."""
    return any(mask & ~allowed == 0 for mask in antichain)
