"""DLCR: P2H+ labels maintained under edge insertions and deletions (§4.1.3).

Chen et al.'s DLCR keeps the pruned label-constrained 2-hop index of P2H+
correct on dynamic graphs.  The update procedures mirror the plain TOL
maintenance, lifted to (hop, mask) entries:

* **insertion** of ``u -(l)-> v``: every hop that reaches ``u`` (with any
  recorded mask ``m``) resumes its forward label-set search from ``v``
  seeded with ``m | {l}`` — only paths through the new edge are traversed,
  exactly the property the survey highlights.  Hops reached from ``v``
  resume backward searches symmetrically.  Newly redundant older entries
  are left in place (they stay sound; DLCR's redundancy removal is a space
  optimisation, not a correctness requirement).
* **deletion**: entries whose witness paths could use the edge all have
  hops inside ``A ∪ D ∪ {hops recorded at A/D}`` (``A`` = unconstrained
  ancestors of ``u``, ``D`` = descendants of ``v``).  Those hops' entries
  are removed and their passes re-run in rank order, re-inserting the
  entries that were once pruned as redundant but are now load-bearing —
  the RIE bookkeeping of the paper, realised by recomputation.
"""

from __future__ import annotations

from typing import ClassVar

from repro.core.base import IndexMetadata
from repro.core.registry import register_labeled
from repro.graphs.labeled import LabeledDiGraph
from repro.obs.build import build_phase
from repro.labeled.p2h import (
    LabeledTwoHopLabels,
    P2HIndex,
    build_labeled_labels,
    labeled_degree_order,
    labeled_resume_backward,
    labeled_resume_forward,
)
from repro.traversal.online import ancestors, descendants

__all__ = ["DLCRIndex"]


@register_labeled
class DLCRIndex(P2HIndex):
    """DLCR: dynamic label-constrained reachability on P2H+ labels."""

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="DLCR",
        framework="2-Hop",
        complete=True,
        input_kind="General",
        dynamic="yes",
        constraint="Alternation",
    )

    @classmethod
    def build(cls, graph: LabeledDiGraph, **params: object) -> "DLCRIndex":
        with build_phase("labeled-pruned-labeling"):
            labels, rank = build_labeled_labels(graph, labeled_degree_order(graph))
        return cls(graph, labels, rank)

    def insert_edge(self, source: int, target: int, label: object) -> None:
        """Insert a labeled edge and resume the affected searches."""
        label_id = self._graph.intern_label(label)
        self._graph.add_edge(source, target, label)
        edge_mask = 1 << label_id
        labels = self._labels
        # hops reaching `source`: masks in L_in(source)[hop]; plus source itself
        forward_work: list[tuple[int, list[tuple[int, int]]]] = []
        forward_work.append((source, [(target, edge_mask)]))
        for hop, masks in labels.l_in[source].items():
            seeds = [(target, m | edge_mask) for m in masks]
            forward_work.append((hop, seeds))
        for hop, seeds in sorted(forward_work, key=lambda it: self._rank[it[0]]):
            labeled_resume_forward(self._graph, labels, self._rank, hop, seeds)
        backward_work: list[tuple[int, list[tuple[int, int]]]] = []
        backward_work.append((target, [(source, edge_mask)]))
        for hop, masks in labels.l_out[target].items():
            seeds = [(source, m | edge_mask) for m in masks]
            backward_work.append((hop, seeds))
        for hop, seeds in sorted(backward_work, key=lambda it: self._rank[it[0]]):
            labeled_resume_backward(self._graph, labels, self._rank, hop, seeds)

    def add_vertex(self) -> int:
        """Extend the index with a fresh isolated vertex.

        New vertices get the worst rank (they never act as hops for older
        pairs); coverage for pairs involving them is established by the
        resumed searches of subsequent edge insertions.
        """
        vertex = self._graph.add_vertex()
        self._labels.l_in.append({})
        self._labels.l_out.append({})
        self._labels.cycles.append([])
        self._rank[vertex] = len(self._rank)
        return vertex

    def delete_edge(self, source: int, target: int, label: object) -> None:
        """Delete a labeled edge and rebuild the affected hops' passes."""
        plain = self._graph.to_plain()
        affected_up = ancestors(plain, source)
        affected_down = descendants(plain, target)
        self._graph.remove_edge(source, target, label)
        labels = self._labels
        stale: set[int] = set(affected_up) | set(affected_down)
        for w in affected_down:
            stale.update(labels.l_in[w])
        for w in affected_up:
            stale.update(labels.l_out[w])
        for hop in stale:
            labels.remove_hop(hop)
        for hop in sorted(stale, key=self._rank.__getitem__):
            forward_seeds = [
                (w, 1 << lid) for w, lid in self._graph.out_edges(hop)
            ]
            labeled_resume_forward(self._graph, labels, self._rank, hop, forward_seeds)
            backward_seeds = [
                (u, 1 << lid) for u, lid in self._graph.in_edges(hop)
            ]
            labeled_resume_backward(self._graph, labels, self._rank, hop, backward_seeds)

