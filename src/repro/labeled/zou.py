"""Zou et al.: efficiently computing the GTC bottom-up (§4.1.2).

Where the baseline :class:`~repro.labeled.gtc.GTCIndex` runs one
Dijkstra-like search per source, Zou et al. compute the same closure
bottom-up over the SCC DAG so single-source results are *shared*:

* the graph is condensed with Tarjan; SCCs are processed in reverse
  topological order, so when a vertex is processed every out-of-SCC
  successor already carries its final rows;
* within an SCC — where paths are not equivalent because of differing
  SPLSs — a label-set fixpoint iterates the §4.1 cross-product rule until
  the members' rows stabilise.  This realises the paper's in-portal /
  out-portal bipartite replacement implicitly: only the rows of members
  with edges crossing the SCC boundary feed the iteration from outside;
* expansion order inside the fixpoint follows the Dijkstra-like
  "fewest distinct labels first" rule.

The index is dynamic (Table 2): updates invalidate the rows of the
sources whose reachable region contains the touched edge, and invalidated
rows are recomputed lazily on the next query — the maintenance discussed
in the original paper, realised with coarse-grained invalidation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

from repro.core.base import IndexMetadata
from repro.core.registry import register_labeled
from repro.graphs.labeled import LabeledDiGraph
from repro.graphs.scc import condense
from repro.graphs.topo import topological_order
from repro.labeled.base import AlternationIndex
from repro.labeled.gtc import single_source_gtc
from repro.labeled.spls import add_to_antichain, antichain_matches
from repro.obs.build import build_phase
from repro.traversal.online import ancestors

__all__ = ["ZouIndex", "PortalDecomposition", "scc_portals"]

_Row = dict[int, list[int]]


@dataclass(frozen=True)
class PortalDecomposition:
    """The §4.1.2 SCC → bipartite portal transformation, made explicit.

    A vertex of an SCC is an *in-portal* iff it has an incoming edge from
    outside the SCC, and an *out-portal* symmetrically.  ``spls`` records,
    per SCC, the minimal SPLS antichains of paths from each in-portal to
    each out-portal *within the SCC* — the content of the bipartite
    replacement graph the paper substitutes for the SCC.
    """

    members: list[list[int]]
    in_portals: list[list[int]]
    out_portals: list[list[int]]
    spls: list[dict[tuple[int, int], list[int]]] = field(default_factory=list)


def scc_portals(graph: LabeledDiGraph) -> PortalDecomposition:
    """Compute the portal decomposition of a labeled graph's SCCs."""
    plain = graph.to_plain()
    condensation = condense(plain)
    members = condensation.members
    in_portals: list[list[int]] = []
    out_portals: list[list[int]] = []
    for comp_id, component in enumerate(members):
        component_set = set(component)
        ins = sorted(
            v
            for v in component
            if any(u not in component_set for u in plain.in_neighbors(v))
        )
        outs = sorted(
            v
            for v in component
            if any(w not in component_set for w in plain.out_neighbors(v))
        )
        in_portals.append(ins)
        out_portals.append(outs)
    # intra-SCC SPLSs between portals, via the Dijkstra-like search
    # restricted to the component
    spls: list[dict[tuple[int, int], list[int]]] = []
    for comp_id, component in enumerate(members):
        rows: dict[tuple[int, int], list[int]] = {}
        if len(component) > 1:
            component_set = set(component)
            sub = LabeledDiGraph(graph.num_vertices)
            for label in graph.labels():
                sub.intern_label(label)
            for v in component:
                for w, label_id in graph.out_edges(v):
                    if w in component_set:
                        sub.add_edge(v, w, graph.label_name(label_id))
            for source in in_portals[comp_id]:
                source_rows, cycles = single_source_gtc(sub, source)
                for target in out_portals[comp_id]:
                    if target == source:
                        if cycles:
                            rows[(source, target)] = list(cycles)
                        continue
                    antichain = source_rows.get(target)
                    if antichain:
                        rows[(source, target)] = list(antichain)
        spls.append(rows)
    return PortalDecomposition(
        members=members, in_portals=in_portals, out_portals=out_portals, spls=spls
    )


@register_labeled
class ZouIndex(AlternationIndex):
    """Bottom-up GTC over the SCC DAG, with lazy update maintenance."""

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="Zou et al.",
        framework="GTC",
        complete=True,
        input_kind="General",
        dynamic="yes",
        constraint="Alternation",
    )

    def __init__(
        self,
        graph: LabeledDiGraph,
        rows: dict[int, _Row],
        cycles: dict[int, list[int]],
    ) -> None:
        super().__init__(graph)
        self._rows = rows
        self._cycles = cycles

    @classmethod
    def build(cls, graph: LabeledDiGraph, **params: object) -> "ZouIndex":
        with build_phase("scc-condense") as phase:
            plain = graph.to_plain()
            condensation = condense(plain)
            phase.annotate(sccs=condensation.dag.num_vertices)
        rows: dict[int, _Row] = {v: {} for v in graph.vertices()}
        cycles: dict[int, list[int]] = {v: [] for v in graph.vertices()}

        def relax(source: int) -> bool:
            """One cross-product pass for ``source``; True if rows changed."""
            changed = False
            for w, label_id in graph.out_edges(source):
                edge_mask = 1 << label_id
                candidates = [(w, edge_mask)]
                for t, antichain in rows[w].items():
                    for mask in antichain:
                        candidates.append((t, edge_mask | mask))
                for c_mask in cycles[w]:
                    candidates.append((w, edge_mask | c_mask))
                for t, mask in candidates:
                    if t == source:
                        if add_to_antichain(cycles[source], mask):
                            changed = True
                    elif add_to_antichain(rows[source].setdefault(t, []), mask):
                        changed = True
            return changed

        with build_phase("bottom-up-relaxation"):
            order = topological_order(condensation.dag)
            for comp in reversed(order):
                members = condensation.members[comp]
                # out-of-SCC successors are final; iterate members to a fixpoint
                # (one pass suffices for singleton SCCs without self-loops).
                changed = True
                while changed:
                    changed = False
                    for v in members:
                        if relax(v):
                            changed = True
        return cls(graph, rows, cycles)

    # -- lazy recomputation ---------------------------------------------------
    def _row_for(self, source: int) -> tuple[_Row, list[int]]:
        row = self._rows.get(source)
        cycle = self._cycles.get(source)
        if row is None or cycle is None:
            row, cycle = single_source_gtc(self._graph, source)
            self._rows[source] = row
            self._cycles[source] = cycle
        return row, cycle

    def _invalidate_through(self, source: int) -> None:
        """Drop cached rows of every vertex that reaches ``source``."""
        plain = self._graph.to_plain()
        for v in ancestors(plain, source):
            self._rows.pop(v, None)
            self._cycles.pop(v, None)

    def query_mask(
        self, source: int, target: int, mask: int, require_cycle: bool
    ) -> bool:
        row, cycle = self._row_for(source)
        if require_cycle:
            return antichain_matches(cycle, mask)
        antichain = row.get(target)
        if antichain is None:
            return False
        return antichain_matches(antichain, mask)

    def size_in_entries(self) -> int:
        """Currently materialised SPLS masks."""
        pair_entries = sum(
            len(antichain) for row in self._rows.values() for antichain in row.values()
        )
        return pair_entries + sum(len(c) for c in self._cycles.values())

    # -- dynamic maintenance ----------------------------------------------------
    def insert_edge(self, source: int, target: int, label: object) -> None:
        """Insert a labeled edge; affected source rows recompute lazily."""
        self._graph.add_edge(source, target, label)
        self._invalidate_through(source)

    def delete_edge(self, source: int, target: int, label: object) -> None:
        """Delete a labeled edge; affected source rows recompute lazily."""
        self._invalidate_through(source)
        self._graph.remove_edge(source, target, label)
