"""The landmark index: partial GTC + accelerated online BFS (§4.1.2).

Valstar et al. index only the top-``k`` highest-degree vertices
("landmarks"): each landmark stores its full single-source GTC.  A query
``Qr(s, t, L')`` runs a label-constrained BFS from ``s``; whenever the
frontier hits a landmark ``v``:

* if ``v``'s GTC certifies ``v → t`` within ``L'``, the query answers
  true immediately (the index has **no false positives**);
* otherwise every vertex ``v`` reaches under ``L'`` is already settled —
  the whole constrained-reachable set of ``v`` is pruned from the
  remaining search.

As §5 discusses, the no-false-positive orientation means a *negative*
query cannot stop early — the asymmetry the paper's open-challenges
section builds its case for no-false-negative partial LCR indexes on.
"""

from __future__ import annotations

from collections import deque
from typing import ClassVar

from repro.core.base import IndexMetadata
from repro.core.registry import register_labeled
from repro.graphs.labeled import LabeledDiGraph
from repro.labeled.base import AlternationIndex
from repro.labeled.gtc import single_source_gtc
from repro.labeled.spls import antichain_matches
from repro.obs.build import build_phase

__all__ = ["LandmarkIndex"]


@register_labeled
class LandmarkIndex(AlternationIndex):
    """Partial GTC over top-degree landmarks with guided constrained BFS."""

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="Landmark index",
        framework="GTC",
        complete=False,
        input_kind="General",
        dynamic="no",
        constraint="Alternation",
    )

    DEFAULT_K = 16
    DEFAULT_SHORTCUT_BUDGET = 4

    def __init__(
        self,
        graph: LabeledDiGraph,
        landmarks: list[int],
        rows: dict[int, dict[int, list[int]]],
        cycles: dict[int, list[int]],
        shortcuts: list[dict[int, list[int]]],
    ) -> None:
        super().__init__(graph)
        self._landmarks = landmarks
        self._landmark_set = set(landmarks)
        self._rows = rows
        self._cycles = cycles
        # §4.1.2's second refinement: per non-landmark vertex, the SPLSs of
        # paths to a bounded number of landmarks, checked before any BFS.
        self._shortcuts = shortcuts

    @classmethod
    def build(
        cls,
        graph: LabeledDiGraph,
        k: int = DEFAULT_K,
        shortcut_budget: int = DEFAULT_SHORTCUT_BUDGET,
        **params: object,
    ) -> "LandmarkIndex":
        with build_phase("landmark-selection", landmarks=min(k, graph.num_vertices)):
            by_degree = sorted(
                graph.vertices(),
                key=lambda v: (-(graph.in_degree(v) + graph.out_degree(v)), v),
            )
            landmarks = by_degree[: min(k, graph.num_vertices)]
            landmark_set = set(landmarks)
        with build_phase("landmark-gtc-sweeps"):
            rows: dict[int, dict[int, list[int]]] = {}
            cycles: dict[int, list[int]] = {}
            for landmark in landmarks:
                rows[landmark], cycles[landmark] = single_source_gtc(graph, landmark)
        # vertex-to-landmark shortcuts, bounded by the predefined parameter:
        # a depth-bounded label-set exploration per vertex — sound SPLSs of
        # *short* paths into landmarks, cheap to build, used purely as a
        # YES accelerator (the guided BFS remains the exact fallback).
        with build_phase("bounded-shortcuts", budget=shortcut_budget):
            shortcuts: list[dict[int, list[int]]] = [{} for _ in graph.vertices()]
            if shortcut_budget > 0:
                for v in graph.vertices():
                    if v in landmark_set:
                        continue
                    shortcuts[v] = cls._bounded_shortcuts(
                        graph, v, landmark_set, shortcut_budget
                    )
        return cls(graph, landmarks, rows, cycles, shortcuts)

    @staticmethod
    def _bounded_shortcuts(
        graph: LabeledDiGraph,
        source: int,
        landmark_set: set[int],
        budget: int,
        max_depth: int = 3,
    ) -> dict[int, list[int]]:
        """SPLSs of paths of length <= max_depth from ``source`` to landmarks."""
        from repro.labeled.spls import add_to_antichain

        found: dict[int, list[int]] = {}
        frontier: list[tuple[int, int]] = [(source, 0)]
        for _depth in range(max_depth):
            next_frontier: list[tuple[int, int]] = []
            seen: set[tuple[int, int]] = set()
            for v, mask in frontier:
                for w, label_id in graph.out_edges(v):
                    new_mask = mask | (1 << label_id)
                    state = (w, new_mask)
                    if state in seen:
                        continue
                    seen.add(state)
                    if w in landmark_set:
                        if w not in found and len(found) >= budget:
                            continue  # budget reached: no new landmarks
                        add_to_antichain(found.setdefault(w, []), new_mask)
                    next_frontier.append(state)
            frontier = next_frontier
        return found

    @property
    def landmarks(self) -> list[int]:
        """The indexed landmark vertices."""
        return list(self._landmarks)

    def _landmark_certifies(self, landmark: int, target: int, mask: int) -> bool:
        if landmark == target:
            return True
        antichain = self._rows[landmark].get(target)
        return antichain is not None and antichain_matches(antichain, mask)

    def _landmark_reachable_set(self, landmark: int, mask: int) -> list[int]:
        """Vertices the landmark's GTC certifies within ``mask`` (for pruning)."""
        return [
            t
            for t, antichain in self._rows[landmark].items()
            if antichain_matches(antichain, mask)
        ]

    def query_mask(
        self, source: int, target: int, mask: int, require_cycle: bool
    ) -> bool:
        # the vertex-to-landmark shortcuts may answer YES with no search at
        # all: source -> landmark within mask, landmark -> target certified.
        for landmark, antichain in self._shortcuts[source].items():
            if not any(m & ~mask == 0 for m in antichain):
                continue
            if landmark == target and not require_cycle:
                return True
            if self._landmark_certifies(landmark, target, mask) and (
                landmark != target
            ):
                return True
        # constrained BFS from `source`, accelerated at landmarks.  The
        # target is never marked seen, so reaching it by an edge (always a
        # path of >= 1 edge) answers both the plain and the cycle case.
        n = self._graph.num_vertices
        seen = bytearray(n)
        queue: deque[int] = deque()

        def settle(v: int) -> bool:
            """Mark v visited and enqueue it; True if the query is answered."""
            seen[v] = 1
            if v in self._landmark_set:
                if self._landmark_certifies(v, target, mask) and not (
                    require_cycle and v == source
                ):
                    return True
                if require_cycle and v == source:
                    if antichain_matches(self._cycles[v], mask):
                        return True
                # prune: anything the landmark reaches within mask is settled
                # (if it could reach the target, the landmark could too).
                for w in self._landmark_reachable_set(v, mask):
                    if w != target:
                        seen[w] = 1
            queue.append(v)
            return False

        if require_cycle:
            # explore source's out-edges, but keep it unmarked so an edge
            # back into it is recognised as closing the cycle.
            queue.append(source)
        else:
            if source == target:
                return True
            if settle(source):
                return True
        while queue:
            v = queue.popleft()
            for w, label_id in self._graph.out_edges(v):
                if not (1 << label_id) & mask:
                    continue
                if w == target:
                    return True
                if not seen[w] and settle(w):
                    return True
        return False

    def size_in_entries(self) -> int:
        """Stored SPLS masks across all landmark rows."""
        entries = sum(
            len(antichain) for row in self._rows.values() for antichain in row.values()
        )
        return entries + sum(len(c) for c in self._cycles.values())
