"""A partial LCR index *without false negatives* — the §5 proposal.

The survey's open-challenges section observes that the only partial
path-constrained index (the landmark index) has no false *positives*, so
negative queries — the common case in real workloads — can never stop
early, and calls for "a partial index without false negatives for
path-constrained reachability queries".  This module is that design,
built from the §3.3 approximate-TC toolkit:

* reachability under an alternation constraint ``L'`` is reachability in
  the label-induced subgraph ``G[L']``, and ``G[L'] ⊆ G[L'']`` whenever
  ``L' ⊆ L''`` — so any no-false-negative filter for a *superset*
  subgraph soundly rejects the constrained query;
* we build one Bloom-filter labeling (BFL-style) for the full graph and
  one for each subgraph ``G[L ∖ X]`` over every exclusion set ``X`` of up
  to ``max_exclude`` labels: a query with constraint ``L'`` consults each
  filter whose subgraph covers ``L'`` — all are upper bounds, so a NO
  from any certifies non-reachability.  Small exclusion sets keep the
  filter count polynomial (``Σ C(|L|, k)``) while the tightest applicable
  filter is often the exact complement of the constraint.

Lookups answer NO or MAYBE only (never YES); MAYBEs are resolved by a
constrained BFS that re-consults the filter at every frontier vertex —
the §5 frontier-pruning rule, now available for LCR queries.  Index size
is ``2(|L|+1)`` machine words per vertex, and construction is
``|L|+1`` linear sweeps.

This index is an *extension* (the survey calls for it; no published
system in Table 2 provides it), so it is intentionally not registered in
the Table 2 registry.
"""

from __future__ import annotations

import random
from collections import deque
from typing import ClassVar

from repro.core.base import IndexMetadata, TriState
from repro.graphs.labeled import LabeledDiGraph
from repro.graphs.scc import condense
from repro.graphs.topo import topological_order
from repro.labeled.base import AlternationIndex
from repro.obs.build import build_phase

__all__ = ["LCRFilterIndex"]


def _bloom_filters(
    graph: LabeledDiGraph, allowed_mask: int, signature: list[int]
) -> tuple[list[int], list[int]]:
    """BFL-style (out, in) filters over the subgraph of ``allowed_mask``.

    General graphs are handled by condensing the subgraph first and
    assigning every member of an SCC the component's filter.
    """
    from repro.graphs.digraph import DiGraph

    n = graph.num_vertices
    plain = DiGraph(n)
    for u in graph.vertices():
        for v, label_id in graph.out_edges(u):
            if (1 << label_id) & allowed_mask:
                plain.add_edge_if_absent(u, v)
    condensation = condense(plain)
    dag = condensation.dag
    comp_signature = [0] * dag.num_vertices
    for v in range(n):
        comp_signature[condensation.scc_of[v]] |= signature[v]
    order = topological_order(dag)
    comp_out = [0] * dag.num_vertices
    for c in reversed(order):
        mask = comp_signature[c]
        for d in dag.out_neighbors(c):
            mask |= comp_out[d]
        comp_out[c] = mask
    comp_in = [0] * dag.num_vertices
    for c in order:
        mask = comp_signature[c]
        for d in dag.in_neighbors(c):
            mask |= comp_in[d]
        comp_in[c] = mask
    out_filter = [comp_out[condensation.scc_of[v]] for v in range(n)]
    in_filter = [comp_in[condensation.scc_of[v]] for v in range(n)]
    return out_filter, in_filter


class LCRFilterIndex(AlternationIndex):
    """No-false-negative partial index for alternation constraints (§5)."""

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="LCR-Filter",
        framework="Approximate TC",
        complete=False,
        input_kind="General",
        dynamic="no",
        constraint="Alternation",
    )

    DEFAULT_BITS = 128
    DEFAULT_HASHES = 2
    DEFAULT_MAX_EXCLUDE = 2

    def __init__(
        self,
        graph: LabeledDiGraph,
        filters: dict[int, tuple[list[int], list[int]]],
    ) -> None:
        super().__init__(graph)
        # keyed by the allowed-label mask the filter was built over
        self._filters = filters

    @classmethod
    def build(
        cls,
        graph: LabeledDiGraph,
        bits: int = DEFAULT_BITS,
        num_hashes: int = DEFAULT_HASHES,
        max_exclude: int = DEFAULT_MAX_EXCLUDE,
        seed: int = 0,
        **params: object,
    ) -> "LCRFilterIndex":
        from itertools import combinations

        with build_phase("hash-signatures", bits=bits, hashes=num_hashes):
            rng = random.Random(seed)
            signature = [0] * graph.num_vertices
            for v in graph.vertices():
                mask = 0
                for _ in range(num_hashes):
                    mask |= 1 << rng.randrange(bits)
                signature[v] = mask
        with build_phase("per-subset-filters", max_exclude=max_exclude) as phase:
            full_mask = (1 << graph.num_labels) - 1
            filters: dict[int, tuple[list[int], list[int]]] = {
                full_mask: _bloom_filters(graph, full_mask, signature)
            }
            label_ids = range(graph.num_labels)
            for exclude_count in range(1, max_exclude + 1):
                for excluded in combinations(label_ids, exclude_count):
                    allowed = full_mask
                    for label_id in excluded:
                        allowed &= ~(1 << label_id)
                    filters[allowed] = _bloom_filters(graph, allowed, signature)
            phase.annotate(filters=len(filters))
        return cls(graph, filters)

    def lookup_mask(self, source: int, target: int, mask: int) -> TriState:
        """NO when any superset filter separates the pair; else MAYBE."""
        if source == target:
            return TriState.MAYBE  # cycles are for the search to decide
        for allowed, (out_filter, in_filter) in self._filters.items():
            if mask & ~allowed:
                continue  # this filter's subgraph does not cover the constraint
            if out_filter[target] & ~out_filter[source]:
                return TriState.NO
            if in_filter[source] & ~in_filter[target]:
                return TriState.NO
        return TriState.MAYBE

    def query_mask(
        self, source: int, target: int, mask: int, require_cycle: bool
    ) -> bool:
        if not require_cycle and self.lookup_mask(source, target, mask) is TriState.NO:
            return False
        # filter-guided constrained BFS: the §5 frontier-pruning rule
        graph = self._graph
        seen = bytearray(graph.num_vertices)
        queue: deque[int] = deque((source,))
        if not require_cycle:
            seen[source] = 1
        while queue:
            v = queue.popleft()
            for w, label_id in graph.out_edges(v):
                if not (1 << label_id) & mask:
                    continue
                if w == target:
                    return True
                if seen[w]:
                    continue
                seen[w] = 1
                if self.lookup_mask(w, target, mask) is TriState.NO:
                    continue  # prune: nothing past w reaches target within mask
                queue.append(w)
        return False

    def size_in_entries(self) -> int:
        """Two words per vertex per filter (Σ C(|L|, k≤max_exclude) filters)."""
        return sum(
            len(out_filter) + len(in_filter)
            for out_filter, in_filter in self._filters.values()
        )
