"""The generalized transitive closure — GTC (§2.3, §4.1).

The GTC extends the transitive closure with edge-label information: for
every ordered vertex pair it stores the minimal antichain of sufficient
path-label sets.  Query processing is a lookup plus subset tests, but the
computation and storage costs are what the survey calls "infeasible in
practice" — this implementation is the completeness reference and the
baseline the size/build benchmarks measure everything else against.

The module also exports :func:`single_source_gtc`, the Dijkstra-like
single-source computation (expansion ordered by the number of distinct
labels, Zou et al.'s "shorter path first" rule) reused by the Zou,
landmark and Jin indexes.
"""

from __future__ import annotations

import heapq
from typing import ClassVar

from repro.core.base import IndexMetadata
from repro.core.registry import register_labeled
from repro.graphs.labeled import LabeledDiGraph
from repro.labeled.base import AlternationIndex
from repro.labeled.spls import add_to_antichain, antichain_matches
from repro.obs.build import build_phase

__all__ = ["GTCIndex", "single_source_gtc"]


def single_source_gtc(
    graph: LabeledDiGraph, source: int
) -> tuple[dict[int, list[int]], list[int]]:
    """All SPLSs of paths from ``source``, Dijkstra-like.

    States ``(vertex, label-set mask)`` are expanded in order of the number
    of distinct labels in the mask — Zou et al.'s distance surrogate — so a
    state is only expanded if its mask is not dominated by an already
    recorded SPLS for that vertex.

    Returns ``(rows, cycles)``: ``rows[t]`` is the minimal antichain of
    SPLSs of non-empty ``source → t`` paths (``t != source``), and
    ``cycles`` the antichain for non-empty ``source → source`` cycles.
    """
    rows: dict[int, list[int]] = {}
    cycles: list[int] = []
    # heap of (popcount, mask, vertex); counter unneeded since ties are fine
    heap: list[tuple[int, int, int]] = []
    for w, label_id in graph.out_edges(source):
        mask = 1 << label_id
        heapq.heappush(heap, (1, mask, w))
    while heap:
        _, mask, v = heapq.heappop(heap)
        if v == source:
            if not add_to_antichain(cycles, mask):
                continue
        else:
            antichain = rows.setdefault(v, [])
            if not add_to_antichain(antichain, mask):
                continue
        for w, label_id in graph.out_edges(v):
            new_mask = mask | (1 << label_id)
            if w == source:
                dominated = any(kept & ~new_mask == 0 for kept in cycles)
            else:
                dominated = any(
                    kept & ~new_mask == 0 for kept in rows.get(w, ())
                )
            if not dominated:
                heapq.heappush(heap, (new_mask.bit_count(), new_mask, w))
    return rows, cycles


@register_labeled
class GTCIndex(AlternationIndex):
    """Fully materialised generalized transitive closure."""

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="GTC",
        framework="GTC",
        complete=True,
        input_kind="General",
        dynamic="no",
        constraint="Alternation",
    )

    def __init__(
        self,
        graph: LabeledDiGraph,
        rows: list[dict[int, list[int]]],
        cycles: list[list[int]],
    ) -> None:
        super().__init__(graph)
        self._rows = rows
        self._cycles = cycles

    @classmethod
    def build(cls, graph: LabeledDiGraph, **params: object) -> "GTCIndex":
        with build_phase("single-source-sweeps", vertices=graph.num_vertices):
            rows: list[dict[int, list[int]]] = []
            cycles: list[list[int]] = []
            for source in graph.vertices():
                row, cycle = single_source_gtc(graph, source)
                rows.append(row)
                cycles.append(cycle)
        return cls(graph, rows, cycles)

    def spls(self, source: int, target: int) -> list[int]:
        """The recorded SPLS antichain for a pair (empty list if unreachable)."""
        if source == target:
            return list(self._cycles[source])
        return list(self._rows[source].get(target, ()))

    def query_mask(
        self, source: int, target: int, mask: int, require_cycle: bool
    ) -> bool:
        if require_cycle:
            return antichain_matches(self._cycles[source], mask)
        antichain = self._rows[source].get(target)
        if antichain is None:
            return False
        return antichain_matches(antichain, mask)

    def size_in_entries(self) -> int:
        """Total stored SPLS masks across all pairs."""
        pair_entries = sum(
            len(antichain) for row in self._rows for antichain in row.values()
        )
        return pair_entries + sum(len(c) for c in self._cycles)
