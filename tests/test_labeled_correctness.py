"""Every path-constrained index agrees with automaton-guided traversal.

The product-automaton BFS of :mod:`repro.traversal.rpq` is the semantics
reference (itself validated against Python's re in test_automaton.py);
each §4 index is checked against it over all pairs and a family of
constraints, on both cyclic and acyclic labeled graphs.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.registry import all_labeled_indexes
from repro.errors import UnsupportedConstraintError
from repro.graphs.generators import random_labeled_digraph
from repro.traversal.rpq import constrained_descendants, rpq_reachable

LABELED = all_labeled_indexes()
ALTERNATION = sorted(
    n for n, c in LABELED.items() if c.metadata.constraint == "Alternation"
)

LABELS = ["a", "b", "c"]


def _alternation_constraints():
    constraints = []
    for r in range(1, len(LABELS) + 1):
        for combo in itertools.combinations(LABELS, r):
            constraints.append("(" + "|".join(combo) + ")*")
            constraints.append("(" + "|".join(combo) + ")+")
    return constraints


def _check_index(index, graph, constraints):
    for constraint in constraints:
        for s in graph.vertices():
            reach = constrained_descendants(graph, s, constraint)
            for t in graph.vertices():
                expected = t in reach
                assert index.query(s, t, constraint) == expected, (
                    type(index).__name__,
                    constraint,
                    s,
                    t,
                )


@pytest.mark.parametrize("name", ALTERNATION)
class TestAlternationIndexes:
    def test_exact_on_cyclic_graph(self, name):
        graph = random_labeled_digraph(16, 40, LABELS, seed=31)
        index = LABELED[name].build(graph)
        _check_index(index, graph, _alternation_constraints())

    def test_exact_on_dag(self, name):
        graph = random_labeled_digraph(16, 35, LABELS, seed=32, acyclic=True)
        index = LABELED[name].build(graph)
        _check_index(index, graph, _alternation_constraints())

    def test_exact_with_skewed_labels(self, name):
        graph = random_labeled_digraph(14, 40, LABELS, seed=33, skew=1.5)
        index = LABELED[name].build(graph)
        _check_index(index, graph, _alternation_constraints()[:6])

    def test_concatenation_constraint_rejected(self, name):
        graph = random_labeled_digraph(8, 15, LABELS, seed=34)
        index = LABELED[name].build(graph)
        with pytest.raises(UnsupportedConstraintError):
            index.query(0, 1, "(a . b)*")

    def test_unknown_label_in_constraint_is_harmless(self, name):
        graph = random_labeled_digraph(10, 25, LABELS, seed=35)
        index = LABELED[name].build(graph)
        for s in graph.vertices():
            for t in graph.vertices():
                expected = rpq_reachable(graph, s, t, "(a | zz)*")
                assert index.query(s, t, "(a | zz)*") == expected


class TestRLC:
    def _constraints(self, max_period):
        constraints = []
        for period in range(1, max_period + 1):
            for seq in itertools.product(LABELS, repeat=period):
                constraints.append("(" + ".".join(seq) + ")*")
                constraints.append("(" + ".".join(seq) + ")+")
        return constraints

    @pytest.mark.parametrize("seed", [41, 42])
    def test_exact_for_periods_up_to_two(self, seed):
        graph = random_labeled_digraph(14, 35, LABELS, seed=seed)
        index = LABELED["RLC"].build(graph, max_period=2)
        _check_index(index, graph, self._constraints(2))

    def test_exact_for_period_three(self):
        graph = random_labeled_digraph(10, 26, LABELS[:2], seed=43)
        index = LABELED["RLC"].build(graph, max_period=3)
        constraints = [
            "(a.b.a)*",
            "(a.a.b)+",
            "(b.b.b)*",
            "(a.b)*",
            "(a)+",
        ]
        _check_index(index, graph, constraints)

    def test_period_beyond_bound_rejected(self):
        graph = random_labeled_digraph(8, 15, LABELS, seed=44)
        index = LABELED["RLC"].build(graph, max_period=2)
        with pytest.raises(UnsupportedConstraintError, match="max_period"):
            index.query(0, 1, "(a.b.c)*")

    def test_alternation_constraint_rejected(self):
        graph = random_labeled_digraph(8, 15, LABELS, seed=45)
        index = LABELED["RLC"].build(graph)
        with pytest.raises(UnsupportedConstraintError):
            index.query(0, 1, "(a | b)*")

    def test_unknown_label_means_unreachable(self):
        graph = random_labeled_digraph(8, 15, LABELS, seed=46)
        index = LABELED["RLC"].build(graph)
        assert index.query(0, 0, "(zz)*")  # empty path
        assert not index.query(0, 0, "(zz)+")
        assert not index.query(0, 1, "(zz)*")

    def test_invalid_max_period_rejected(self):
        graph = random_labeled_digraph(4, 6, LABELS, seed=47)
        with pytest.raises(ValueError):
            LABELED["RLC"].build(graph, max_period=0)
