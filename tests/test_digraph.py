"""Unit tests for the plain directed-graph substrate."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EdgeError, VertexError
from repro.graphs.digraph import DiGraph


class TestConstruction:
    def test_empty_graph(self):
        graph = DiGraph(0)
        assert graph.num_vertices == 0
        assert graph.num_edges == 0
        assert list(graph.edges()) == []

    def test_vertices_range(self):
        graph = DiGraph(5)
        assert list(graph.vertices()) == [0, 1, 2, 3, 4]
        assert len(graph) == 5

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(VertexError):
            DiGraph(-1)

    def test_edges_at_construction(self):
        graph = DiGraph(3, [(0, 1), (1, 2)])
        assert graph.num_edges == 2
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)


class TestMutation:
    def test_add_edge_updates_both_directions(self):
        graph = DiGraph(3)
        graph.add_edge(0, 2)
        assert graph.out_neighbors(0) == [2]
        assert graph.in_neighbors(2) == [0]
        assert graph.out_degree(0) == 1
        assert graph.in_degree(2) == 1
        assert graph.degree(2) == 1

    def test_duplicate_edge_rejected(self):
        graph = DiGraph(2, [(0, 1)])
        with pytest.raises(EdgeError):
            graph.add_edge(0, 1)

    def test_add_edge_if_absent(self):
        graph = DiGraph(2)
        assert graph.add_edge_if_absent(0, 1) is True
        assert graph.add_edge_if_absent(0, 1) is False
        assert graph.num_edges == 1

    def test_remove_edge(self):
        graph = DiGraph(2, [(0, 1)])
        graph.remove_edge(0, 1)
        assert graph.num_edges == 0
        assert not graph.has_edge(0, 1)

    def test_remove_missing_edge_rejected(self):
        graph = DiGraph(2)
        with pytest.raises(EdgeError):
            graph.remove_edge(0, 1)

    def test_out_of_range_vertex_rejected(self):
        graph = DiGraph(2)
        with pytest.raises(VertexError):
            graph.add_edge(0, 5)
        with pytest.raises(VertexError):
            graph.out_neighbors(-1)

    def test_add_vertex(self):
        graph = DiGraph(1)
        new = graph.add_vertex()
        assert new == 1
        graph.add_edge(0, 1)
        assert graph.has_edge(0, 1)

    def test_self_loop_allowed(self):
        graph = DiGraph(1)
        graph.add_edge(0, 0)
        assert graph.has_edge(0, 0)


class TestDerived:
    def test_reversed_flips_every_edge(self, small_dag):
        rev = small_dag.reversed()
        assert rev.num_edges == small_dag.num_edges
        for u, v in small_dag.edges():
            assert rev.has_edge(v, u)

    def test_copy_is_independent(self, small_dag):
        clone = small_dag.copy()
        clone.add_edge(5, 7)
        assert not small_dag.has_edge(5, 7)
        assert clone.num_edges == small_dag.num_edges + 1

    def test_equality(self):
        a = DiGraph(2, [(0, 1)])
        b = DiGraph(2, [(0, 1)])
        assert a == b
        b.add_edge(1, 0)
        assert a != b

    def test_contains_protocol(self, small_dag):
        assert (0, 1) in small_dag
        assert (1, 0) not in small_dag
        assert "nonsense" not in small_dag
        assert (0, 99) not in small_dag

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(DiGraph(1))

    def test_repr(self, small_dag):
        assert "DiGraph" in repr(small_dag)


@given(
    st.integers(min_value=1, max_value=12),
    st.lists(st.tuples(st.integers(0, 11), st.integers(0, 11)), max_size=40),
)
def test_edge_count_matches_edge_iteration(n, pairs):
    """num_edges always equals the number of iterated edges."""
    graph = DiGraph(n)
    for u, v in pairs:
        if u < n and v < n:
            graph.add_edge_if_absent(u, v)
    assert graph.num_edges == sum(1 for _ in graph.edges())
    # reversal preserves the count and is an involution
    assert graph.reversed().reversed() == graph
