"""Tests for witness-path recovery."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.digraph import DiGraph
from repro.graphs.generators import random_dag, random_labeled_digraph
from repro.traversal.automaton import build_dfa
from repro.traversal.online import bfs_reachable
from repro.traversal.rpq import rpq_reachable
from repro.traversal.witness import constrained_witness_path, witness_path
from repro.workloads.datasets import figure1b, vertex_id


class TestPlainWitness:
    def test_empty_path(self):
        graph = DiGraph(2)
        assert witness_path(graph, 1, 1) == [1]

    def test_unreachable_returns_none(self):
        graph = DiGraph(3, [(0, 1)])
        assert witness_path(graph, 1, 2) is None

    def test_path_is_valid_and_shortest(self):
        graph = DiGraph(5, [(0, 1), (1, 2), (2, 3), (0, 3), (3, 4)])
        path = witness_path(graph, 0, 4)
        assert path == [0, 3, 4]  # the shortcut beats the long way
        for u, v in zip(path, path[1:]):
            assert graph.has_edge(u, v)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 500))
    def test_witness_exists_iff_reachable(self, seed):
        graph = random_dag(20, 40, seed=seed)
        for s in range(0, 20, 3):
            for t in range(0, 20, 3):
                path = witness_path(graph, s, t)
                assert (path is not None) == bfs_reachable(graph, s, t)
                if path:
                    assert path[0] == s and path[-1] == t
                    for u, v in zip(path, path[1:]):
                        assert graph.has_edge(u, v)


class TestConstrainedWitness:
    def test_figure1b_rlc_witness(self):
        """The paper's §4.2 path: (L, worksFor, D, friendOf, H, …, B)."""
        graph = figure1b()
        steps = constrained_witness_path(
            graph, vertex_id("L"), vertex_id("B"), "(worksFor . friendOf)*"
        )
        assert steps is not None
        labels = [label for _v, label in steps[:-1]]
        assert labels == ["worksFor", "friendOf", "worksFor", "friendOf"]
        vertices = [v for v, _label in steps]
        assert vertices[0] == vertex_id("L")
        assert vertices[-1] == vertex_id("B")

    def test_word_is_in_the_language(self):
        graph = random_labeled_digraph(15, 40, ["a", "b"], seed=301)
        constraint = "(a | b)*"
        dfa = build_dfa(constraint)
        for s in range(15):
            for t in range(15):
                steps = constrained_witness_path(graph, s, t, constraint)
                expected = rpq_reachable(graph, s, t, constraint)
                assert (steps is not None) == expected
                if steps:
                    word = [label for _v, label in steps[:-1]]
                    assert dfa.accepts(word)

    def test_empty_path_only_for_star(self):
        graph = random_labeled_digraph(5, 8, ["a"], seed=302)
        star = constrained_witness_path(graph, 2, 2, "(a)*")
        assert star == [(2, "")]

    def test_edges_exist_along_the_witness(self):
        graph = random_labeled_digraph(12, 30, ["x", "y"], seed=303)
        steps = None
        for s in range(12):
            for t in range(12):
                steps = constrained_witness_path(graph, s, t, "(x . y)*")
                if steps and len(steps) > 1:
                    for (v, label), (w, _next) in zip(steps, steps[1:]):
                        assert graph.has_edge(v, w, label)
                    return
