"""Graph-family × index matrix: exactness on every generator family.

Each fast index is checked against BFS on one instance of every synthetic
family the generators produce — the structural variety (deep, shallow,
skewed, cyclic, tree-like, blocky) that individual suites don't cross.
"""

from __future__ import annotations

import pytest

from repro.core.condensed import CondensedIndex
from repro.core.registry import all_plain_indexes
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import (
    cyclic_communities,
    gnp_digraph,
    layered_dag,
    random_dag,
    random_tree,
    rmat_digraph,
    scale_free_dag,
    tree_with_shortcuts,
)
from repro.graphs.topo import is_dag
from repro.traversal.online import bfs_reachable

PLAIN = all_plain_indexes()
FAST = sorted(
    set(PLAIN) - {"2-Hop", "Dual labeling", "Path-hop"}  # quadratic regimes
)

FAMILIES = {
    "random_dag": lambda: random_dag(35, 80, seed=201),
    "scale_free": lambda: scale_free_dag(35, 2, seed=202),
    "layered": lambda: layered_dag(6, 6, 2, seed=203),
    "tree": lambda: random_tree(35, seed=204),
    "tree_shortcuts": lambda: tree_with_shortcuts(35, 8, seed=205),
    "gnp_cyclic": lambda: gnp_digraph(22, 0.07, seed=206),
    "communities": lambda: cyclic_communities(4, 5, 9, seed=207),
    "rmat": lambda: rmat_digraph(5, 90, seed=208),
    "self_loops": lambda: _with_self_loops(random_dag(20, 40, seed=209)),
    "edgeless": lambda: DiGraph(12),
}


def _with_self_loops(graph: DiGraph) -> DiGraph:
    for v in (0, 5, 19):
        graph.add_edge(v, v)
    return graph


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("name", FAST)
def test_family_matrix(name, family):
    graph = FAMILIES[family]()
    cls = PLAIN[name]
    if cls.metadata.input_kind == "DAG" and not is_dag(graph):
        index = CondensedIndex.build(graph, inner=cls)
    else:
        index = cls.build(graph)
    n = graph.num_vertices
    for s in range(0, n, 2):
        for t in range(n):
            assert index.query(s, t) == bfs_reachable(graph, s, t), (
                name,
                family,
                s,
                t,
            )
