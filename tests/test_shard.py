"""Unit and integration tests for the repro.shard subsystem.

Partitioner invariants, the community-DAG generator, parallel shard
builds and their aggregated report, persistence round-trips, the
``shard.route.*`` / ``shard.build.*`` observability counters, serving a
sharded index through the HTTP service, and the ``repro shard`` CLI.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.cli import main
from repro.core.condensed import CondensedIndex
from repro.errors import GraphError, IndexBuildError, NotADAGError, QueryError
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import community_dag, cyclic_communities, random_dag
from repro.graphs.topo import is_dag
from repro.obs.metrics import global_registry
from repro.obs.tracer import TRACER, disable_tracing, enable_tracing
from repro.persistence import load_index, save_index
from repro.service.engine import ReachabilityService
from repro.service.server import serve
from repro.shard import Partition, ShardBuildReport, ShardedIndex, partition_dag
from repro.traversal.online import bfs_reachable
from repro.workloads.updates import EdgeOp


@pytest.fixture(autouse=True)
def _tracer_off():
    disable_tracing()
    TRACER.clear()
    yield
    disable_tracing()
    TRACER.clear()


# -- partitioner ------------------------------------------------------------
class TestPartitioner:
    def test_every_vertex_assigned_and_shards_nonempty(self):
        graph = random_dag(40, 90, seed=501)
        partition = partition_dag(graph, 4)
        assert isinstance(partition, Partition)
        assert partition.num_shards == 4
        assert len(partition.shard_of) == 40
        assert all(0 <= s < 4 for s in partition.shard_of)
        assert all(size >= 1 for size in partition.shard_sizes)
        assert sum(partition.shard_sizes) == 40

    def test_cut_edges_are_exactly_the_crossing_edges(self):
        graph = random_dag(30, 70, seed=502)
        partition = partition_dag(graph, 3)
        shard = partition.shard_of
        expected = sorted(
            (u, v) for u, v in graph.edges() if shard[u] != shard[v]
        )
        assert list(partition.cut_edges) == expected
        assert partition.num_edges == graph.num_edges
        boundary = set(partition.boundary_vertices)
        assert boundary == {v for edge in expected for v in edge}

    def test_k1_is_trivial(self):
        graph = random_dag(20, 40, seed=503)
        partition = partition_dag(graph, 1)
        assert partition.num_shards == 1
        assert partition.cut_edges == ()
        assert partition.cut_fraction() == 0.0

    def test_k_clamped_to_vertices(self):
        partition = partition_dag(DiGraph(3, [(0, 1), (1, 2)]), 10)
        assert partition.num_shards == 3

    def test_refinement_never_increases_the_cut(self):
        graph = community_dag(6, 10, seed=504, inter_edge_prob=0.03)
        unrefined = partition_dag(graph, 6, refine_passes=0)
        refined = partition_dag(graph, 6, refine_passes=3)
        assert len(refined.cut_edges) <= len(unrefined.cut_edges)

    def test_community_banding_recovers_low_cut(self):
        # Community-major ids are a topo order, so banding a 6x10 graph
        # into 6 shards should cut (nearly) only the sparse inter edges.
        graph = community_dag(6, 10, seed=505, inter_edge_prob=0.02)
        partition = partition_dag(graph, 6)
        assert partition.cut_fraction() < 0.3

    def test_rejects_cyclic_and_bad_arguments(self):
        cyclic = DiGraph(3, [(0, 1), (1, 2), (2, 0)])
        with pytest.raises(NotADAGError):
            partition_dag(cyclic, 2)
        dag = DiGraph(3, [(0, 1)])
        with pytest.raises(GraphError):
            partition_dag(dag, 0)
        with pytest.raises(GraphError):
            partition_dag(dag, 2, refine_passes=-1)

    def test_as_dict_is_json_serialisable(self):
        partition = partition_dag(random_dag(15, 30, seed=506), 3)
        payload = json.dumps(partition.as_dict())
        assert "cut_fraction" in payload


# -- community_dag generator ------------------------------------------------
class TestCommunityDag:
    def test_is_a_dag_with_block_structure(self):
        graph = community_dag(4, 12, seed=510)
        assert graph.num_vertices == 48
        assert is_dag(graph)
        for u, v in graph.edges():
            assert u < v  # ids are a topological order by construction

    def test_inter_probability_dial(self):
        sparse = community_dag(4, 10, seed=511, inter_edge_prob=0.01)
        dense = community_dag(4, 10, seed=511, inter_edge_prob=0.2)

        def inter_edges(graph):
            return sum(
                1 for u, v in graph.edges() if u // 10 != v // 10
            )

        assert inter_edges(sparse) < inter_edges(dense)

    def test_zero_inter_prob_disconnects_communities(self):
        graph = community_dag(3, 8, seed=512, inter_edge_prob=0.0)
        assert all(u // 8 == v // 8 for u, v in graph.edges())

    def test_validates_arguments(self):
        with pytest.raises(GraphError):
            community_dag(0, 5, seed=1)
        with pytest.raises(GraphError):
            community_dag(2, 0, seed=1)
        with pytest.raises(GraphError):
            community_dag(2, 5, seed=1, intra_edge_prob=1.5)
        with pytest.raises(GraphError):
            community_dag(2, 5, seed=1, inter_edge_prob=-0.1)


# -- parallel builds and the aggregated report ------------------------------
class TestParallelBuild:
    @pytest.mark.parametrize("executor", ("serial", "thread", "process"))
    def test_executors_agree(self, executor):
        graph = community_dag(4, 10, seed=520, inter_edge_prob=0.05)
        index = ShardedIndex.build(
            graph, family="TC", num_shards=4, executor=executor
        )
        pairs = [(s, t) for s in range(0, 40, 3) for t in range(0, 40, 2)]
        assert index.query_batch(pairs) == [
            bfs_reachable(graph, s, t) for s, t in pairs
        ]
        report = index.shard_build_report
        assert isinstance(report, ShardBuildReport)
        assert report.executor == executor
        assert report.num_shards == 4

    def test_report_aggregates_per_shard_build_reports(self):
        graph = community_dag(3, 10, seed=521, inter_edge_prob=0.05)
        index = ShardedIndex.build(graph, family="GRAIL", num_shards=3)
        report = index.shard_build_report
        assert len(report.shard_reports) == 3
        for shard_report in report.shard_reports:
            assert shard_report is not None
            assert shard_report.index == "GRAIL"
            assert shard_report.total_seconds >= 0
        assert report.boundary_report is not None
        assert sum(report.shard_sizes) == 30
        assert all(size >= 1 for size in report.shard_sizes)
        assert report.cut_edges == len(index.partition.cut_edges)
        json.dumps(report.as_dict())
        assert "shard builds" in report.render_text()

    def test_standard_build_report_has_shard_phases(self):
        graph = random_dag(20, 40, seed=522)
        index = ShardedIndex.build(graph, num_shards=2)
        phases = {phase.name for phase in index.build_report.phases}
        assert {"partition", "shard-extract", "shard-builds", "boundary-graph"} \
            <= phases

    def test_invalid_arguments(self):
        graph = random_dag(10, 15, seed=523)
        with pytest.raises(IndexBuildError):
            ShardedIndex.build(graph, executor="fibers")
        with pytest.raises(IndexBuildError):
            ShardedIndex.build(graph, family="Sharded")

    def test_out_of_range_queries_raise(self):
        index = ShardedIndex.build(random_dag(10, 15, seed=524), num_shards=2)
        with pytest.raises(QueryError):
            index.query(0, 10)
        with pytest.raises(QueryError):
            index.query_batch([(0, 1), (-1, 2)])


# -- persistence ------------------------------------------------------------
class TestPersistence:
    def test_round_trip_preserves_answers(self, tmp_path):
        graph = community_dag(4, 10, seed=530, inter_edge_prob=0.06)
        index = ShardedIndex.build(graph, family="PLL", num_shards=4)
        pairs = [(s, t) for s in range(0, 40, 2) for t in range(0, 40, 3)]
        before = index.query_batch(pairs)  # also warms the border caches
        path = tmp_path / "sharded.idx"
        save_index(index, path)
        loaded = load_index(path)
        assert isinstance(loaded, ShardedIndex)
        assert loaded.query_batch(pairs) == before
        assert loaded.partition.shard_of == index.partition.shard_of
        assert loaded.family == "PLL"
        assert loaded.boundary_index is not None
        assert loaded.size_in_entries() == index.size_in_entries()

    def test_caches_dropped_on_save(self, tmp_path):
        graph = community_dag(2, 8, seed=531, inter_edge_prob=0.1)
        index = ShardedIndex.build(graph, num_shards=2)
        for s in range(16):
            index.query(s, (s + 5) % 16)
        path = tmp_path / "sharded.idx"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded._out_cache == {}
        assert loaded._pair_cache == {}

    def test_condensed_sharded_round_trip(self, tmp_path):
        cyclic = cyclic_communities(3, 5, 8, seed=532)
        index = CondensedIndex.build(
            cyclic, inner=ShardedIndex, num_shards=2, family="GRAIL"
        )
        path = tmp_path / "condensed-sharded.idx"
        save_index(index, path)
        loaded = load_index(path)
        n = cyclic.num_vertices
        for s in range(0, n, 2):
            for t in range(n):
                assert loaded.query(s, t) == bfs_reachable(cyclic, s, t)


# -- observability ----------------------------------------------------------
def _shard_route_counters() -> dict[str, int]:
    return dict(global_registry().as_dict().get("shard", {}).get("route", {}))


class TestObservability:
    def test_route_counters_gated_on_tracing(self):
        graph = community_dag(2, 8, seed=540, inter_edge_prob=0.1)
        index = ShardedIndex.build(graph, num_shards=2)
        before = _shard_route_counters()
        index.query(2, 2)
        assert _shard_route_counters() == before  # tracer off: no counters
        shard_of = index.partition.shard_of
        intra_pair = next(
            (u, v)
            for u, v in graph.edges()
            if shard_of[u] == shard_of[v]  # a direct edge: intra YES for sure
        )
        enable_tracing()
        index.query(*intra_pair)  # same shard, shard-local index decides
        index.query(0, 15)  # cross shard
        index.query(0, 15)  # memoised border pair
        index.query(3, 3)  # trivial
        after = _shard_route_counters()
        assert after.get("intra_shard", 0) >= before.get("intra_shard", 0) + 1
        assert after.get("cross_shard", 0) >= before.get("cross_shard", 0) + 1
        assert after.get("boundary_cache", 0) >= before.get("boundary_cache", 0) + 1
        assert after.get("trivial", 0) >= before.get("trivial", 0) + 1
        spans = [s for s in TRACER.finished() if s.name == "shard.query"]
        assert spans and all("route" in s.attributes for s in spans)

    def test_batch_routes_attributed(self):
        graph = community_dag(2, 8, seed=541, inter_edge_prob=0.1)
        index = ShardedIndex.build(graph, num_shards=2)
        enable_tracing()
        before = _shard_route_counters()
        pairs = [(s, t) for s in range(16) for t in range(16)]
        index.query_batch(pairs)
        after = _shard_route_counters()
        attributed = sum(after.values()) - sum(before.values())
        assert attributed == len(pairs)

    def test_build_counters(self):
        before = global_registry().as_dict().get("shard", {}).get("build", {})
        graph = random_dag(20, 40, seed=542)
        ShardedIndex.build(graph, num_shards=4)
        after = global_registry().as_dict()["shard"]["build"]
        assert after.get("builds", 0) == before.get("builds", 0) + 1
        assert after.get("shards", 0) == before.get("shards", 0) + 4


# -- service + HTTP integration ---------------------------------------------
class TestService:
    def test_service_serves_sharded_index(self):
        graph = community_dag(2, 8, seed=550, inter_edge_prob=0.1)
        service = ReachabilityService(
            graph, index="Sharded", index_params={"num_shards": 2}
        )
        snap = service.acquire()
        assert isinstance(snap.plain, ShardedIndex)
        assert snap.plain.partition.num_shards == 2
        for s in range(0, 16, 3):
            for t in range(16):
                assert service.reach(s, t) == bfs_reachable(graph, s, t)

    def test_updates_rebuild_the_sharded_index(self):
        graph = community_dag(2, 6, seed=551, inter_edge_prob=0.1)
        service = ReachabilityService(
            graph, index="Sharded", index_params={"num_shards": 2}, cache_capacity=None
        )
        assert service.reach(0, 11) == bfs_reachable(graph, 0, 11)
        epoch = service.apply_updates([EdgeOp("insert", 0, 11)])
        assert epoch == 1
        assert service.reach(0, 11) is True
        assert isinstance(service.acquire().plain, ShardedIndex)

    def test_cyclic_update_wraps_in_condensation(self):
        graph = community_dag(2, 5, seed=552, inter_edge_prob=0.2)
        service = ReachabilityService(
            graph, index="Sharded", index_params={"num_shards": 2}
        )
        forward = next(
            (u, v) for u, v in graph.edges() if u // 5 != v // 5
        )
        service.apply_updates([EdgeOp("insert", forward[1], forward[0])])
        snap = service.acquire()
        assert isinstance(snap.plain, CondensedIndex)
        updated = snap.graph
        for s in range(0, 10, 2):
            for t in range(10):
                assert service.reach(s, t) == bfs_reachable(updated, s, t)

    def test_http_end_to_end(self):
        graph = community_dag(2, 6, seed=553, inter_edge_prob=0.15)
        service = ReachabilityService(
            graph, index="Sharded", index_params={"num_shards": 2, "family": "GRAIL"}
        )
        server = serve(service, port=0)
        server.start_background()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            with urllib.request.urlopen(f"{base}/reach?source=0&target=11", timeout=5) as r:
                payload = json.loads(r.read())
            assert payload["reachable"] == bfs_reachable(graph, 0, 11)
            with urllib.request.urlopen(f"{base}/explain?source=1&target=2", timeout=5) as r:
                explanation = json.loads(r.read())
            assert explanation["index"] == "Sharded"
            assert explanation["route"] in {
                "intra_shard", "cross_shard", "boundary_cache", "trivial", "cache",
            }
        finally:
            server.shutdown()
            server.server_close()


# -- CLI --------------------------------------------------------------------
@pytest.fixture
def edge_list(tmp_path):
    path = tmp_path / "graph.txt"
    path.write_text("a b\nb c\nc d\nd e\ne f\n")
    return str(path)


class TestCli:
    def test_shard_stats(self, edge_list, capsys):
        assert main(["shard", "stats", edge_list, "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "cut_edges" in out
        assert "shard_sizes" in out

    def test_shard_stats_cyclic_condenses(self, tmp_path, capsys):
        path = tmp_path / "cyclic.txt"
        path.write_text("a b\nb a\nb c\n")
        assert main(["shard", "stats", str(path), "--shards", "2"]) == 0
        assert "condensation" in capsys.readouterr().out

    def test_shard_build_and_query(self, edge_list, tmp_path, capsys):
        saved = str(tmp_path / "saved.idx")
        assert main(
            ["shard", "build", edge_list, "--shards", "2", "--save", saved]
        ) == 0
        out = capsys.readouterr().out
        assert "shard builds" in out
        assert "saved to" in out
        assert main(["shard", "query", edge_list, "a", "f", "--load", saved]) == 0
        assert "true" in capsys.readouterr().out
        assert main(["shard", "query", edge_list, "f", "a", "--load", saved]) == 1

    def test_shard_query_explain(self, edge_list, capsys):
        code = main(
            ["shard", "query", edge_list, "a", "f", "--shards", "2", "--explain"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "route:" in out

    def test_serve_index_param_parsing(self):
        from repro.cli import _parse_index_params

        params = _parse_index_params(["num_shards=4", "family=GRAIL"])
        assert params == {"num_shards": 4, "family": "GRAIL"}
        with pytest.raises(ValueError):
            _parse_index_params(["nonsense"])
