"""The bit-parallel kernel layer: CSR snapshots and multi-source sweeps."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import NotADAGError
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import gnp_digraph, random_dag
from repro.kernels import (
    CSRGraph,
    ancestors_set,
    batch_reachable,
    csr_of,
    descendant_bitsets,
    descendants_set,
    reach_masks,
    reverse_reach_masks,
)
from repro.traversal.online import bfs_reachable


def _diamond() -> DiGraph:
    graph = DiGraph(4)
    graph.add_edge(0, 1)
    graph.add_edge(0, 2)
    graph.add_edge(1, 3)
    graph.add_edge(2, 3)
    return graph


class TestCSRGraph:
    def test_matches_adjacency(self):
        graph = random_dag(40, 110, seed=31)
        csr = CSRGraph.from_digraph(graph)
        assert csr.num_vertices == graph.num_vertices
        assert csr.num_edges == graph.num_edges
        for v in graph.vertices():
            out = csr.out_indices[csr.out_indptr[v] : csr.out_indptr[v + 1]]
            assert sorted(out) == sorted(graph.out_neighbors(v))
            inn = csr.in_indices[csr.in_indptr[v] : csr.in_indptr[v + 1]]
            assert sorted(inn) == sorted(graph.in_neighbors(v))

    def test_topo_order_on_dag(self):
        graph = random_dag(30, 70, seed=32)
        topo = CSRGraph.from_digraph(graph).topo_order
        assert sorted(topo) == list(range(30))
        position = {v: i for i, v in enumerate(topo)}
        for u, v in graph.edges():
            assert position[u] < position[v]

    def test_topo_order_none_on_cycle(self):
        graph = DiGraph(3)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        graph.add_edge(2, 0)
        assert CSRGraph.from_digraph(graph).topo_order is None

    def test_self_loop_counts_as_cycle(self):
        graph = DiGraph(2)
        graph.add_edge(0, 0)
        assert CSRGraph.from_digraph(graph).topo_order is None

    def test_empty_graph(self):
        csr = CSRGraph.from_digraph(DiGraph(0))
        assert csr.num_vertices == 0
        assert csr.topo_order == []


class TestCsrOfCache:
    def test_same_snapshot_until_mutation(self):
        graph = _diamond()
        first = csr_of(graph)
        assert csr_of(graph) is first
        graph.add_edge(3, 3)  # any mutation invalidates
        second = csr_of(graph)
        assert second is not first
        assert second.num_edges == 5

    def test_add_vertex_invalidates(self):
        graph = _diamond()
        first = csr_of(graph)
        graph.add_vertex()
        assert csr_of(graph) is not first
        assert csr_of(graph).num_vertices == 5

    def test_cache_not_pickled(self):
        graph = _diamond()
        csr_of(graph)
        clone = pickle.loads(pickle.dumps(graph))
        assert clone._csr_cache is None
        assert sorted(clone.edges()) == sorted(graph.edges())
        # and the clone builds its own snapshot on demand
        assert csr_of(clone).num_edges == 4


class TestReachMasks:
    @pytest.mark.parametrize("seed", [41, 42])
    @pytest.mark.parametrize("cyclic", [False, True])
    def test_matches_bfs(self, seed, cyclic):
        graph = (
            gnp_digraph(25, 0.08, seed=seed)
            if cyclic
            else random_dag(25, 60, seed=seed)
        )
        csr = csr_of(graph)
        sources = [0, 3, 7, 12, 24]
        masks = reach_masks(csr, sources)
        rev = reverse_reach_masks(csr, sources)
        for slot, s in enumerate(sources):
            bit = 1 << slot
            for t in graph.vertices():
                assert bool(masks[t] & bit) == bfs_reachable(graph, s, t)
                assert bool(rev[t] & bit) == bfs_reachable(graph, t, s)

    def test_empty_sources(self):
        csr = csr_of(_diamond())
        assert reach_masks(csr, []) == [0, 0, 0, 0]


class TestDescendantBitsets:
    def test_closure_on_dag(self):
        graph = random_dag(20, 45, seed=51)
        closure = descendant_bitsets(csr_of(graph))
        for s in graph.vertices():
            for t in graph.vertices():
                assert bool((closure[s] >> t) & 1) == bfs_reachable(graph, s, t)

    def test_rejects_cycles(self):
        graph = DiGraph(2)
        graph.add_edge(0, 1)
        graph.add_edge(1, 0)
        with pytest.raises(NotADAGError):
            descendant_bitsets(csr_of(graph))


class TestSweepSets:
    @pytest.mark.parametrize("cyclic", [False, True])
    def test_matches_bfs(self, cyclic):
        graph = (
            gnp_digraph(25, 0.08, seed=61) if cyclic else random_dag(25, 60, seed=61)
        )
        csr = csr_of(graph)
        for v in (0, 9, 24):
            assert descendants_set(csr, v) == {
                t for t in graph.vertices() if bfs_reachable(graph, v, t)
            }
            assert ancestors_set(csr, v) == {
                s for s in graph.vertices() if bfs_reachable(graph, s, v)
            }


class TestBatchReachable:
    @pytest.mark.parametrize("cyclic", [False, True])
    def test_matches_bfs(self, cyclic):
        graph = (
            gnp_digraph(30, 0.07, seed=71) if cyclic else random_dag(30, 70, seed=71)
        )
        csr = csr_of(graph)
        pairs = [(s, t) for s in range(30) for t in (0, 7, 19, 29)]
        pairs += [(5, 5), (0, 0)] + pairs[:5]  # self-pairs and duplicates
        expected = [bfs_reachable(graph, s, t) for s, t in pairs]
        assert batch_reachable(csr, pairs) == expected

    def test_word_chunking(self):
        graph = random_dag(40, 100, seed=72)
        csr = csr_of(graph)
        pairs = [(s, (s * 7) % 40) for s in range(40)]
        expected = [bfs_reachable(graph, s, t) for s, t in pairs]
        # a 5-bit word forces 8 waves over the 40 distinct sources
        assert batch_reachable(csr, pairs, word_bits=5) == expected

    def test_empty_batch(self):
        assert batch_reachable(csr_of(_diamond()), []) == []
