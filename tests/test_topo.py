"""Tests for topological-order utilities."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotADAGError
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import random_dag
from repro.graphs.topo import (
    is_dag,
    reverse_topological_order,
    topological_levels,
    topological_order,
    topological_rank,
)


class TestTopologicalOrder:
    def test_respects_edges(self, small_dag):
        order = topological_order(small_dag)
        position = {v: i for i, v in enumerate(order)}
        for u, v in small_dag.edges():
            assert position[u] < position[v]

    def test_includes_every_vertex_once(self, small_dag):
        order = topological_order(small_dag)
        assert sorted(order) == list(small_dag.vertices())

    def test_cycle_raises(self, cyclic_graph):
        with pytest.raises(NotADAGError):
            topological_order(cyclic_graph)

    def test_deterministic_tie_break(self):
        graph = DiGraph(3)  # no edges: pure tie-break by id
        assert topological_order(graph) == [0, 1, 2]

    def test_reverse_is_reversed(self, small_dag):
        assert reverse_topological_order(small_dag) == list(
            reversed(topological_order(small_dag))
        )


class TestDerivedOrders:
    def test_is_dag(self, small_dag, cyclic_graph):
        assert is_dag(small_dag)
        assert not is_dag(cyclic_graph)

    def test_rank_inverts_order(self, medium_dag):
        order = topological_order(medium_dag)
        rank = topological_rank(medium_dag)
        for position, v in enumerate(order):
            assert rank[v] == position

    def test_levels_strictly_increase_along_edges(self, medium_dag):
        level = topological_levels(medium_dag)
        for u, v in medium_dag.edges():
            assert level[u] < level[v]

    def test_levels_of_sources_are_zero(self, small_dag):
        level = topological_levels(small_dag)
        assert level[0] == 0
        assert level[7] == 0  # isolated vertex

    def test_level_is_longest_path(self):
        # 0 -> 1 -> 2 and 0 -> 2: level of 2 must be 2 (longest path)
        graph = DiGraph(3, [(0, 1), (1, 2), (0, 2)])
        assert topological_levels(graph) == [0, 1, 2]


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 40), st.integers(0, 120), st.integers(0, 1000))
def test_random_dags_always_sort(n, extra, seed):
    graph = random_dag(n, min(extra, n * (n - 1) // 2), seed=seed)
    order = topological_order(graph)
    position = {v: i for i, v in enumerate(order)}
    assert all(position[u] < position[v] for u, v in graph.edges())
