"""The numpy acceleration layer: differential equivalence and fallbacks.

Every accelerated path must produce bit-identical answers to the
authoritative pure-Python kernels — these tests force each backend in
turn over a matrix of graph shapes and compare.  Without numpy the
numpy-specific tests skip and the selection tests assert the layer
stays silently disabled.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro import accel
from repro.errors import NotADAGError
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import gnp_digraph, layered_dag, random_dag
from repro.kernels import (
    batch_reachable,
    csr_of,
    descendant_bitsets,
    reach_masks,
    reverse_reach_masks,
)
from repro.plain.pruned import TwoHopLabels, build_pruned_labels, degree_order

needs_numpy = pytest.mark.skipif(
    not accel.available() or accel.kill_switch_engaged(),
    reason="numpy not installed or REPRO_ACCEL kill switch engaged",
)


@pytest.fixture(autouse=True)
def _restore_backend():
    yield
    accel.set_backend("auto")


def _chain(n: int) -> DiGraph:
    graph = DiGraph(n)
    for v in range(n - 1):
        graph.add_edge(v, v + 1)
    return graph


def _self_loop() -> DiGraph:
    graph = DiGraph(3)
    graph.add_edge(0, 1)
    graph.add_edge(1, 1)
    graph.add_edge(1, 2)
    return graph


def _graph_matrix() -> dict[str, DiGraph]:
    """≥4 shapes: dense DAG, cyclic, deep chain, layered, sparse, empty."""
    return {
        "dag": random_dag(80, 320, seed=11),
        "cyclic": gnp_digraph(60, 0.06, seed=12),
        "chain": _chain(100),
        "layered": layered_dag(5, 16, 3, seed=13),
        "sparse": random_dag(120, 60, seed=14),
        "self_loop": _self_loop(),
        "empty": DiGraph(6),
    }


def _sources(graph: DiGraph, count: int, seed: int) -> list[int]:
    n = graph.num_vertices
    if n == 0:
        return []
    rng = random.Random(seed)
    return [rng.randrange(n) for _ in range(count)]


def _pairs(graph: DiGraph, count: int, seed: int) -> list[tuple[int, int]]:
    n = graph.num_vertices
    if n == 0:
        return []
    rng = random.Random(seed)
    return [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]


# -- differential matrix ---------------------------------------------------
@needs_numpy
@pytest.mark.parametrize("shape", sorted(_graph_matrix()))
class TestKernelDifferential:
    """python vs numpy over every kernel entry point, bit for bit."""

    def _csr(self, shape):
        return csr_of(_graph_matrix()[shape])

    def test_reach_masks(self, shape):
        graph = _graph_matrix()[shape]
        csr = csr_of(graph)
        sources = _sources(graph, 70, seed=21)  # > one uint64 word
        accel.set_backend("python")
        expected = reach_masks(csr, sources)
        accel.set_backend("numpy")
        assert reach_masks(csr, sources) == expected

    def test_reverse_reach_masks(self, shape):
        graph = _graph_matrix()[shape]
        csr = csr_of(graph)
        targets = _sources(graph, 70, seed=22)
        accel.set_backend("python")
        expected = reverse_reach_masks(csr, targets)
        accel.set_backend("numpy")
        assert reverse_reach_masks(csr, targets) == expected

    def test_descendant_bitsets(self, shape):
        csr = self._csr(shape)
        accel.set_backend("python")
        try:
            expected = descendant_bitsets(csr)
        except NotADAGError:
            expected = NotADAGError
        accel.set_backend("numpy")
        if expected is NotADAGError:
            with pytest.raises(NotADAGError):
                descendant_bitsets(csr)
        else:
            assert descendant_bitsets(csr) == expected

    def test_batch_reachable(self, shape):
        graph = _graph_matrix()[shape]
        csr = csr_of(graph)
        pairs = _pairs(graph, 150, seed=23)
        accel.set_backend("python")
        expected = batch_reachable(csr, pairs, word_bits=16)
        accel.set_backend("numpy")
        assert batch_reachable(csr, pairs, word_bits=16) == expected


@needs_numpy
def test_masks_match_on_large_auto_threshold_graph():
    """`auto` routes big graphs to numpy; answers still match python."""
    graph = random_dag(800, 2400, seed=31)
    csr = csr_of(graph)
    sources = _sources(graph, 100, seed=32)
    assert accel.use_for_graph(csr.num_vertices)
    auto_masks = reach_masks(csr, sources)
    accel.set_backend("python")
    assert reach_masks(csr, sources) == auto_masks


# -- label probe -----------------------------------------------------------
@needs_numpy
class TestLabelDifferential:
    def _labels(self, graph):
        return build_pruned_labels(graph, degree_order(graph))

    @pytest.mark.parametrize("shape", ["dag", "cyclic", "chain", "sparse"])
    def test_covered_many(self, shape):
        graph = _graph_matrix()[shape]
        labels = self._labels(graph)
        pairs = _pairs(graph, 200, seed=41)
        accel.set_backend("python")
        expected = labels.covered_many(pairs)
        accel.set_backend("numpy")
        assert labels.covered_many(pairs) == expected
        singles = [labels.covered(s, t) for s, t in pairs]
        assert singles == expected

    def test_mutation_invalidates_cached_arrays(self):
        graph = _graph_matrix()["dag"]
        labels = self._labels(graph)
        pairs = _pairs(graph, 120, seed=42)
        accel.set_backend("numpy")
        labels.covered_many(pairs)  # populate the flattened twin
        hop = max(range(graph.num_vertices), key=lambda v: len(labels.l_in[v]))
        labels.remove_hop(hop)
        accel.set_backend("python")
        expected = labels.covered_many(pairs)
        accel.set_backend("numpy")
        assert labels.covered_many(pairs) == expected

    def test_pickle_excludes_array_twin(self):
        graph = _graph_matrix()["dag"]
        labels = self._labels(graph)
        accel.set_backend("numpy")
        labels.covered_many(_pairs(graph, 50, seed=43))
        clone = pickle.loads(pickle.dumps(labels))
        assert clone._arrays is None
        assert clone.l_in == labels.l_in
        assert clone.l_out == labels.l_out
        assert clone.size_in_entries() == labels.size_in_entries()


# -- CSR arrays and shared memory -----------------------------------------
@needs_numpy
class TestSharedArrays:
    def test_from_csr_matches_from_digraph(self):
        from repro.accel.arrays import CSRArrays

        graph = random_dag(50, 180, seed=51)
        a = CSRArrays.from_csr(csr_of(graph))
        b = CSRArrays.from_digraph(graph)
        for name in ("out_indptr", "out_indices", "in_indptr", "in_indices"):
            assert getattr(a, name).tolist() == getattr(b, name).tolist()

    def test_shared_memory_round_trip(self):
        from repro.accel.arrays import CSRArrays, digraph_from_arrays

        graph = gnp_digraph(40, 0.1, seed=52)
        arrays = CSRArrays.from_digraph(graph)
        shm, handle = arrays.to_shared()
        try:
            attached, worker_shm = CSRArrays.from_shared(handle)
            rebuilt = digraph_from_arrays(attached)
            assert rebuilt.num_vertices == graph.num_vertices
            assert rebuilt.num_edges == graph.num_edges
            assert sorted(rebuilt.edges()) == sorted(graph.edges())
            del attached
            worker_shm.close()
        finally:
            shm.close()
            shm.unlink()

    def test_handle_pickles_small(self):
        from repro.accel.arrays import CSRArrays

        graph = random_dag(400, 1600, seed=53)
        shm, handle = CSRArrays.from_digraph(graph).to_shared()
        try:
            handle_bytes = len(pickle.dumps(handle))
            graph_bytes = len(pickle.dumps(graph))
            assert handle_bytes < 256
            assert handle_bytes < graph_bytes // 10
        finally:
            shm.close()
            shm.unlink()

    def test_to_shared_failure_surfaces(self):
        from repro.accel.arrays import CSRArrays

        def broken_factory(create, size):
            raise OSError("no /dev/shm")

        arrays = CSRArrays.from_digraph(random_dag(10, 20, seed=54))
        with pytest.raises(OSError):
            arrays.to_shared(factory=broken_factory)

    def test_level_schedule_none_on_cycle(self):
        from repro.accel.arrays import CSRArrays

        graph = DiGraph(3)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        graph.add_edge(2, 0)
        assert CSRArrays.from_digraph(graph).schedule(forward=True) is None
        assert CSRArrays.from_digraph(graph).schedule(forward=False) is None


# -- shard transport -------------------------------------------------------
@needs_numpy
class TestShardTransport:
    def _build(self, graph, **kwargs):
        from repro.shard.engine import ShardedIndex

        return ShardedIndex.build(
            graph, family="PLL", num_shards=4, executor="process", **kwargs
        )

    def test_shm_ships_fewer_bytes_than_pickle(self):
        graph = random_dag(300, 900, seed=61)
        index = self._build(graph, workers=2)
        report = index.shard_build_report
        if report.transport == "inline":
            pytest.skip("process pool unavailable in this environment")
        assert report.transport == "shm"
        assert len(report.bytes_shipped_per_worker) == report.num_shards
        accel.set_backend("python")
        pickled = self._build(graph, workers=2).shard_build_report
        if pickled.transport == "inline":
            pytest.skip("process pool unavailable in this environment")
        assert pickled.transport == "pickle"
        assert sum(report.bytes_shipped_per_worker) < sum(
            pickled.bytes_shipped_per_worker
        )
        assert report.as_dict()["transport"] == "shm"
        assert "shm" in report.render_text()

    def test_shm_and_pickle_agree(self):
        graph = random_dag(200, 600, seed=62)
        shm_index = self._build(graph, workers=2)
        accel.set_backend("python")
        pickle_index = self._build(graph, workers=2)
        pairs = _pairs(graph, 300, seed=63)
        accel.set_backend("auto")
        assert shm_index.query_batch(pairs) == pickle_index.query_batch(pairs)


# -- backend selection and reporting ---------------------------------------
class TestBackendSelection:
    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            accel.set_backend("cuda")

    def test_python_backend_always_allowed(self):
        accel.set_backend("python")
        assert not accel.enabled()
        assert accel.backend_name() == "python"
        assert not accel.use_for_graph(10**9)
        assert not accel.use_for_batch(10**9)

    def test_kill_switch_disables_layer(self, monkeypatch):
        monkeypatch.setenv("REPRO_ACCEL", "0")
        assert accel.kill_switch_engaged()
        assert not accel.enabled()
        assert accel.backend_name() == "python"
        graph = random_dag(40, 100, seed=71)
        csr = csr_of(graph)
        sources = _sources(graph, 20, seed=72)
        masks = reach_masks(csr, sources)
        monkeypatch.delenv("REPRO_ACCEL")
        assert reach_masks(csr, sources) == masks

    def test_kill_switch_values(self, monkeypatch):
        for value in ("0", "false", "off", "no", "FALSE"):
            monkeypatch.setenv("REPRO_ACCEL", value)
            assert accel.kill_switch_engaged()
        for value in ("1", "true", "", "yes"):
            monkeypatch.setenv("REPRO_ACCEL", value)
            assert not accel.kill_switch_engaged()

    def test_numpy_backend_requires_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_ACCEL", raising=False)
        if accel.available():
            accel.set_backend("numpy")
            assert accel.backend_name() == "numpy"
            assert accel.use_for_graph(1)  # forcing bypasses thresholds
            assert accel.use_for_batch(1)
        else:
            with pytest.raises(ValueError):
                accel.set_backend("numpy")

    def test_auto_respects_thresholds(self, monkeypatch):
        monkeypatch.delenv("REPRO_ACCEL", raising=False)
        accel.set_backend("auto")
        if not accel.available():
            assert not accel.use_for_graph(accel.MIN_VERTICES)
            return
        assert not accel.use_for_graph(accel.MIN_VERTICES - 1)
        assert accel.use_for_graph(accel.MIN_VERTICES)
        assert not accel.use_for_batch(accel.MIN_BATCH - 1)
        assert accel.use_for_batch(accel.MIN_BATCH)

    def test_describe_shape(self):
        status = accel.describe()
        assert status["backend"] in ("python", "numpy")
        assert status["selection"] == "auto"
        assert isinstance(status["available"], bool)


class TestBackendStamps:
    def test_size_report_carries_backend(self):
        from repro.plain.pll import PLLIndex

        index = PLLIndex.build(random_dag(30, 80, seed=81))
        report = index.size_report()
        assert report.backend == accel.backend_name()
        assert report.as_dict()["backend"] == report.backend

    def test_build_report_carries_backend(self):
        from repro.plain.pll import PLLIndex

        index = PLLIndex.build(random_dag(30, 80, seed=82))
        assert index.build_report.backend == accel.backend_name()
        assert index.build_report.as_dict()["backend"] in ("python", "numpy")

    def test_forced_python_stamps_python(self):
        from repro.plain.pll import PLLIndex

        accel.set_backend("python")
        index = PLLIndex.build(random_dag(30, 80, seed=83))
        assert index.size_report().backend == "python"
        assert index.build_report.backend == "python"
