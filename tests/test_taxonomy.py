"""The registry regenerates the survey's Tables 1 and 2 exactly.

Each expected row is transcribed from the paper; the test asserts the
live implementation metadata matches, so the taxonomy benchmarks print
tables that are guaranteed in sync with the paper.
"""

from __future__ import annotations

import pytest

from repro.core.registry import (
    all_labeled_indexes,
    all_plain_indexes,
    labeled_index,
    plain_index,
)
from repro.errors import ReproError

# (name, framework, index type, input, dynamic) — Table 1 of the paper.
# "TC" is this library's explicit baseline row (the paper discusses TC in
# §2.3 prose rather than the table).
TABLE1 = {
    "Tree cover": ("Tree cover", "Complete", "DAG", "no"),
    "Tree+SSPI": ("Tree cover", "Partial", "DAG", "no"),
    "Dual labeling": ("Tree cover", "Complete", "DAG", "no"),
    "GRIPP": ("Tree cover", "Partial", "General", "no"),
    "Path-tree": ("Tree cover", "Complete", "DAG", "yes"),
    "GRAIL": ("Tree cover", "Partial", "DAG", "no"),
    "Ferrari": ("Tree cover", "Partial", "DAG", "no"),
    "DAGGER": ("Tree cover", "Partial", "DAG", "yes"),
    "2-Hop": ("2-Hop", "Complete", "General", "no"),
    "Ralf et al.": ("2-Hop", "Complete", "General", "yes"),
    "3-Hop": ("2-Hop", "Complete", "DAG", "no"),
    "U2-hop": ("2-Hop", "Complete", "DAG", "yes"),
    "Path-hop": ("2-Hop", "Complete", "DAG", "no"),
    "TFL": ("2-Hop", "Complete", "DAG", "no"),
    "DL": ("2-Hop", "Complete", "General", "no"),
    "PLL": ("2-Hop", "Complete", "General", "no"),
    "TOL": ("2-Hop", "Complete", "DAG", "yes"),
    "DBL": ("2-Hop", "Partial", "General", "insert-only"),
    "O'Reach": ("2-Hop", "Partial", "DAG", "no"),
    "IP": ("Approximate TC", "Partial", "DAG", "yes"),
    "BFL": ("Approximate TC", "Partial", "DAG", "no"),
    "HL": ("-", "Complete", "DAG", "no"),
    "Feline": ("-", "Partial", "DAG", "no"),
    "Preach": ("-", "Partial", "DAG", "no"),
    "TC": ("TC", "Complete", "General", "no"),
    # The §6 scaling composition (not a paper row, like "TC" above): any
    # registered family built per partition shard plus a boundary index.
    "Sharded": ("-", "Complete", "DAG", "no"),
}

# (name, framework, constraint, index type, input, dynamic) — Table 2.
# "GTC" is the explicit §2.3 baseline row.
TABLE2 = {
    "Jin et al.": ("Tree cover", "Alternation", "Complete", "General", "no"),
    "Chen et al.": ("Tree cover", "Alternation", "Complete", "General", "no"),
    "Zou et al.": ("GTC", "Alternation", "Complete", "General", "yes"),
    "Landmark index": ("GTC", "Alternation", "Partial", "General", "no"),
    "P2H+": ("2-Hop", "Alternation", "Complete", "General", "no"),
    "DLCR": ("2-Hop", "Alternation", "Complete", "General", "yes"),
    "RLC": ("2-Hop", "Concatenation", "Complete", "General", "no"),
    "GTC": ("GTC", "Alternation", "Complete", "General", "no"),
}


def test_every_table1_row_is_implemented():
    assert set(all_plain_indexes()) == set(TABLE1)


def test_every_table2_row_is_implemented():
    assert set(all_labeled_indexes()) == set(TABLE2)


@pytest.mark.parametrize("name", sorted(TABLE1))
def test_table1_row_matches_paper(name):
    framework, index_type, input_kind, dynamic = TABLE1[name]
    meta = plain_index(name).metadata
    assert meta.framework == framework
    assert meta.index_type == index_type
    assert meta.input_kind == input_kind
    assert meta.dynamic == dynamic
    assert meta.constraint is None


@pytest.mark.parametrize("name", sorted(TABLE2))
def test_table2_row_matches_paper(name):
    framework, constraint, index_type, input_kind, dynamic = TABLE2[name]
    meta = labeled_index(name).metadata
    assert meta.framework == framework
    assert meta.constraint == constraint
    assert meta.index_type == index_type
    assert meta.input_kind == input_kind
    assert meta.dynamic == dynamic


def test_unknown_names_raise_with_suggestions():
    with pytest.raises(ReproError, match="GRAIL"):
        plain_index("definitely-not-an-index")
    with pytest.raises(ReproError, match="P2H"):
        labeled_index("definitely-not-an-index")
