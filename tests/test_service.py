"""Tests for the serving tier: engine, cache, coalescing, metrics.

The centrepiece is the hammer test: N reader threads assert
oracle-consistent answers *at their observed epoch* while a writer
applies update batches — snapshot isolation means no torn reads, no
exceptions, and a cache that never serves a stale epoch.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import ServiceError
from repro.graphs.generators import random_dag, random_labeled_digraph
from repro.service import (
    MISS,
    LatencyHistogram,
    MetricsRegistry,
    QueryCoalescer,
    ReachabilityService,
    ResultCache,
    dedupe,
)
from repro.traversal.online import bfs_reachable
from repro.traversal.rpq import rpq_reachable
from repro.workloads.updates import labeled_update_stream, update_stream


class TestMetrics:
    def test_counter_monotone(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.b")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.increment(-1)

    def test_histogram_percentiles_bracket_samples(self):
        hist = LatencyHistogram()
        for _ in range(99):
            hist.observe(1e-4)
        hist.observe(2.0)
        assert hist.count == 100
        # p50 lands in the 1e-4 bucket; p99's bucket must not exceed
        # the next bound above 2.0, and the bucket bound is an upper
        # estimate of the true sample.
        assert 1e-4 <= hist.percentile(50) < 2.5e-4
        assert hist.percentile(99.5) >= 2.0
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["max_s"] == 2.0

    def test_histogram_overflow_uses_observed_max(self):
        hist = LatencyHistogram(buckets=(0.001, 0.01))
        hist.observe(5.0)
        assert hist.percentile(99) == 5.0

    def test_registry_dict_and_text(self):
        registry = MetricsRegistry()
        registry.counter("service.queries.cache").increment(3)
        registry.histogram("service.latency.cache").observe(0.001)
        tree = registry.as_dict()
        assert tree["service"]["queries"]["cache"] == 3
        assert tree["service"]["latency"]["cache"]["count"] == 1
        text = registry.render_text()
        assert "service_queries_cache 3" in text
        assert "service_latency_cache_count 1" in text

    def test_name_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.histogram("x")


class TestResultCache:
    def test_epoch_mismatch_is_a_miss(self):
        cache = ResultCache(capacity=8)
        cache.put(("k",), 0, True)
        assert cache.get(("k",), 0) is True
        assert cache.get(("k",), 1) is MISS  # stale entry dropped on sight
        assert cache.get(("k",), 0) is MISS  # ... and really gone
        stats = cache.statistics()
        assert stats.hits == 1 and stats.misses == 2
        assert stats.invalidated_entries == 1

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 0, 1)
        cache.put("b", 0, 2)
        assert cache.get("a", 0) == 1  # refresh a
        cache.put("c", 0, 3)  # evicts b
        assert cache.get("b", 0) is MISS
        assert cache.get("a", 0) == 1
        assert cache.statistics().evictions == 1

    def test_invalidate_all_counts_cycles(self):
        cache = ResultCache(capacity=8)
        cache.put("a", 0, 1)
        cache.put("b", 0, 2)
        assert cache.invalidate_all() == 2
        stats = cache.statistics()
        assert stats.invalidation_cycles == 1
        assert stats.invalidated_entries == 2
        assert stats.size == 0


class TestBatching:
    def test_dedupe_fan_out(self):
        unique, refs = dedupe([("a",), ("b",), ("a",), ("a",)])
        assert unique == [("a",), ("b",)]
        assert refs == [0, 1, 0, 0]

    def test_coalescer_single_thread_leads(self):
        coalescer = QueryCoalescer()
        result, shared = coalescer.run("k", lambda: 42)
        assert result == 42 and shared is False
        assert coalescer.led == 1 and coalescer.coalesced == 0

    def test_coalescer_shares_inflight_result(self):
        coalescer = QueryCoalescer()
        release = threading.Event()
        entered = threading.Event()
        results = []

        def slow():
            entered.set()
            release.wait(5.0)
            return "answer"

        def leader():
            results.append(coalescer.run("k", slow))

        def follower():
            entered.wait(5.0)
            results.append(coalescer.run("k", lambda: "other"))

        threads = [threading.Thread(target=leader), threading.Thread(target=follower)]
        threads[0].start()
        entered.wait(5.0)
        threads[1].start()
        # Give the follower a moment to register on the in-flight entry.
        for _ in range(1000):
            if coalescer.coalesced:
                break
            threading.Event().wait(0.001)
        release.set()
        for thread in threads:
            thread.join(5.0)
        assert ("answer", False) in results
        assert ("answer", True) in results

    def test_coalescer_propagates_errors(self):
        coalescer = QueryCoalescer()

        def boom():
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            coalescer.run("k", boom)
        # The failed flight is cleared; the key is usable again.
        assert coalescer.run("k", lambda: 1) == (1, False)


class TestEngineBasics:
    def test_plain_answers_match_bfs(self):
        graph = random_dag(30, 70, seed=501)
        service = ReachabilityService(graph, index="GRAIL")
        for s in range(0, 30, 3):
            for t in range(30):
                assert service.reach(s, t) == bfs_reachable(graph, s, t)

    def test_second_lookup_hits_cache(self):
        graph = random_dag(20, 40, seed=502)
        service = ReachabilityService(graph)
        first = service.reach_ex(0, 10)
        second = service.reach_ex(0, 10)
        assert first.route == "plain_index"
        assert second.route == "cache"
        assert first.answer == second.answer
        assert service.metrics_dict()["cache"]["hits"] == 1

    def test_cache_disabled(self):
        graph = random_dag(20, 40, seed=503)
        service = ReachabilityService(graph, cache_capacity=None)
        service.reach(0, 10)
        result = service.reach_ex(0, 10)
        assert result.route == "plain_index"
        assert "cache" not in service.metrics_dict()

    def test_labeled_routing(self):
        graph = random_labeled_digraph(18, 45, ["a", "b"], seed=504)
        service = ReachabilityService(graph)
        alternation = service.lreach_ex(0, 5, "(a | b)*")
        assert alternation.route == "labeled_index"
        mixed = service.lreach_ex(0, 5, "a . (a | b)*")
        assert mixed.route == "traversal"
        assert alternation.answer == rpq_reachable(graph, 0, 5, "(a | b)*")
        assert mixed.answer == rpq_reachable(graph, 0, 5, "a . (a | b)*")

    def test_lreach_requires_labeled_mode(self):
        service = ReachabilityService(random_dag(10, 15, seed=505))
        with pytest.raises(ServiceError):
            service.lreach(0, 1, "(a)*")

    def test_batch_single_snapshot_and_dedupe(self):
        graph = random_labeled_digraph(15, 35, ["a", "b"], seed=506)
        service = ReachabilityService(graph)
        results = service.batch([(0, 3), (0, 3), (1, 4, "(a | b)*"), (0, 3)])
        assert len(results) == 4
        assert len({r.epoch for r in results}) == 1
        assert results[0] is results[1] is results[3]
        # Deduped copies were answered once: one plain_index evaluation.
        queries = service.metrics_dict()["service"]["queries"]
        assert queries["plain_index"] == 1

    def test_updates_swap_epochs_and_clear_cache(self):
        graph = random_dag(25, 55, seed=507)
        service = ReachabilityService(graph, index="GRAIL")
        service.reach(0, 12)
        ops = update_stream(graph, 10, seed=508)
        assert service.apply_updates(ops) == 1
        working = graph.copy()
        for op in ops:
            if op.kind == "insert":
                working.add_edge(op.source, op.target)
            else:
                working.remove_edge(op.source, op.target)
        for s in range(0, 25, 5):
            for t in range(25):
                assert service.reach(s, t) == bfs_reachable(working, s, t)
        metrics = service.metrics_dict()
        assert metrics["service"]["epoch"] == 1
        assert metrics["service"]["swaps"] == 1
        assert metrics["cache"]["invalidation_cycles"] == 1

    def test_dynamic_plain_index_is_patched(self):
        graph = random_dag(25, 55, seed=509)
        service = ReachabilityService(graph, index="TOL")
        ops = update_stream(graph, 8, seed=510, keep_acyclic=True)
        service.apply_updates(ops)
        working = graph.copy()
        for op in ops:
            if op.kind == "insert":
                working.add_edge(op.source, op.target)
            else:
                working.remove_edge(op.source, op.target)
        for s in range(0, 25, 4):
            for t in range(25):
                assert service.reach(s, t) == bfs_reachable(working, s, t)
        metrics = service.metrics_dict()["service"]
        assert metrics["patches"] == 1
        assert metrics["rebuilds"] == 0

    def test_rebuild_always_policy(self):
        graph = random_dag(25, 55, seed=511)
        service = ReachabilityService(graph, index="TOL", rebuild="always")
        service.apply_updates(update_stream(graph, 8, seed=512, keep_acyclic=True))
        metrics = service.metrics_dict()["service"]
        assert metrics["patches"] == 0
        assert metrics["rebuilds"] == 1

    def test_wrong_op_type_rejected(self):
        graph = random_dag(10, 15, seed=513)
        service = ReachabilityService(graph)
        labeled = random_labeled_digraph(10, 15, ["a"], seed=514)
        ops = labeled_update_stream(labeled, 2, seed=515)
        with pytest.raises(ServiceError):
            service.apply_updates(ops)

    def test_metrics_text_renders(self):
        graph = random_dag(10, 15, seed=516)
        service = ReachabilityService(graph)
        service.reach(0, 5)
        text = service.metrics_text()
        assert "service_epoch 0" in text
        assert "cache_hits 0" in text


class TestExecuteBatch:
    PAIRS = [(0, 5), (3, 17), (17, 3), (6, 6), (0, 5), (12, 1), (0, 5)]

    def test_answers_match_oracle_at_one_epoch(self):
        graph = random_dag(20, 45, seed=601)
        service = ReachabilityService(graph, index="GRAIL")
        results = service.execute_batch(self.PAIRS)
        assert [r.answer for r in results] == [
            bfs_reachable(graph, s, t) for s, t in self.PAIRS
        ]
        assert {r.epoch for r in results} == {0}
        assert service.execute_batch([]) == []

    def test_metrics_reconcile_across_cold_and_warm_batches(self):
        graph = random_dag(20, 45, seed=602)
        service = ReachabilityService(graph, index="GRAIL")
        unique = len(set(self.PAIRS))
        cold = service.execute_batch(self.PAIRS)
        # cold: nothing cached — every pair misses, the unique ones compute
        assert all(r.route == "plain_index" for r in cold)
        warm = service.execute_batch(self.PAIRS)
        assert all(r.route == "cache" for r in warm)
        assert [r.answer for r in warm] == [r.answer for r in cold]
        batch = service.metrics_dict()["service"]["batch"]
        assert batch["requests"] == 2
        assert batch["pairs"] == 2 * len(self.PAIRS)
        assert batch["cache_hits"] == len(self.PAIRS)  # all of the warm batch
        assert batch["computed"] == unique  # dedupe collapsed the cold batch
        assert batch["size"]["count"] == 2
        assert batch["latency"]["count"] == 2

    def test_cache_disabled_computes_everything(self):
        graph = random_dag(20, 45, seed=603)
        service = ReachabilityService(graph, cache_capacity=None)
        for _ in range(2):
            results = service.execute_batch(self.PAIRS)
            assert all(r.route == "plain_index" for r in results)
        batch = service.metrics_dict()["service"]["batch"]
        assert batch["cache_hits"] == 0
        assert batch["computed"] == 2 * len(set(self.PAIRS))

    def test_labeled_mode_uses_plain_projection(self):
        graph = random_labeled_digraph(20, 50, ["a", "b"], seed=604)
        service = ReachabilityService(graph)
        plain = graph.to_plain()
        answers = service.reach_batch(self.PAIRS)
        assert answers == [bfs_reachable(plain, s, t) for s, t in self.PAIRS]

    def test_batch_sees_the_epoch_it_acquired(self):
        graph = random_dag(20, 45, seed=605)
        service = ReachabilityService(graph, index="GRAIL")
        service.apply_updates(update_stream(graph, 5, seed=606))
        results = service.execute_batch(self.PAIRS)
        assert {r.epoch for r in results} == {1}


def _run_hammer(service, epoch_graphs, readers, queries_per_reader, check):
    """Readers verify answers against the oracle of their observed epoch."""
    errors: list[BaseException] = []
    start = threading.Barrier(readers + 1)

    def reader(seed):
        import random

        rng = random.Random(seed)
        n = epoch_graphs[0].num_vertices
        try:
            start.wait(10.0)
            for _ in range(queries_per_reader):
                s = rng.randrange(n)
                t = rng.randrange(n)
                check(service, epoch_graphs, s, t)
        except BaseException as exc:  # noqa: BLE001 — surfaced in the main thread
            errors.append(exc)

    threads = [
        threading.Thread(target=reader, args=(900 + i,)) for i in range(readers)
    ]
    for thread in threads:
        thread.start()
    start.wait(10.0)
    return threads, errors


class TestSnapshotIsolationHammer:
    """The ISSUE acceptance test: concurrent readers vs a batching writer."""

    @pytest.mark.parametrize("index", ["GRAIL", "TC"])  # rebuild vs patch paths
    def test_plain_hammer(self, index):
        graph = random_dag(50, 120, seed=601)
        stream = update_stream(graph, 40, seed=602)
        batches = [stream[i : i + 8] for i in range(0, 40, 8)]
        # Per-epoch oracle graphs: epoch e == first e batches applied.
        epoch_graphs = [graph.copy()]
        for batch in batches:
            working = epoch_graphs[-1].copy()
            for op in batch:
                if op.kind == "insert":
                    working.add_edge(op.source, op.target)
                else:
                    working.remove_edge(op.source, op.target)
            epoch_graphs.append(working)
        service = ReachabilityService(graph, index=index, cache_capacity=512)

        def check(svc, oracles, s, t):
            result = svc.reach_ex(s, t)
            assert 0 <= result.epoch < len(oracles)
            expected = bfs_reachable(oracles[result.epoch], s, t)
            assert result.answer == expected, (s, t, result)

        threads, errors = _run_hammer(
            service, epoch_graphs, readers=4, queries_per_reader=150, check=check
        )
        for batch in batches:
            service.apply_updates(batch)
        for thread in threads:
            thread.join(30.0)
        assert not errors, errors[:3]
        metrics = service.metrics_dict()
        assert metrics["service"]["epoch"] == len(batches)
        assert metrics["service"]["swaps"] == len(batches)
        assert metrics["cache"]["invalidation_cycles"] == len(batches)
        assert metrics["service"]["updates_applied"] == sum(len(b) for b in batches)

    def test_labeled_hammer(self):
        graph = random_labeled_digraph(30, 80, ["a", "b", "c"], seed=603)
        stream = labeled_update_stream(graph, 24, seed=604)
        batches = [stream[i : i + 6] for i in range(0, 24, 6)]
        epoch_graphs = [graph.copy()]
        for batch in batches:
            working = epoch_graphs[-1].copy()
            for op in batch:
                if op.kind == "insert":
                    working.add_edge(op.source, op.target, op.label)
                else:
                    working.remove_edge(op.source, op.target, op.label)
            epoch_graphs.append(working)
        service = ReachabilityService(graph, cache_capacity=512)

        def check(svc, oracles, s, t):
            result = svc.lreach_ex(s, t, "(a | b)*")
            expected = rpq_reachable(oracles[result.epoch], s, t, "(a | b)*")
            assert result.answer == expected, (s, t, result)

        threads, errors = _run_hammer(
            service, epoch_graphs, readers=3, queries_per_reader=60, check=check
        )
        for batch in batches:
            service.apply_updates(batch)
        for thread in threads:
            thread.join(60.0)
        assert not errors, errors[:3]
        metrics = service.metrics_dict()
        assert metrics["service"]["epoch"] == len(batches)
        assert metrics["service"]["swaps"] == len(batches)
        assert metrics["cache"]["invalidation_cycles"] == len(batches)
