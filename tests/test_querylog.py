"""Tests for the §5 query-log-style mixed-shape workload."""

from __future__ import annotations

import pytest

from repro.core.oracle import PathReachabilityOracle
from repro.graphs.generators import random_labeled_digraph
from repro.traversal.rpq import rpq_reachable
from repro.workloads.querylog import (
    DEFAULT_MIX,
    QueryLogMix,
    dispatch_statistics,
    querylog_workload,
)


@pytest.fixture(scope="module")
def graph():
    return random_labeled_digraph(18, 45, ["a", "b", "c"], seed=77)


class TestGeneration:
    def test_ground_truth_correct(self, graph):
        workload = querylog_workload(graph, 60, seed=78)
        assert len(workload) == 60
        for query in workload:
            expected = rpq_reachable(graph, query.source, query.target, query.constraint)
            assert query.reachable == expected

    def test_deterministic(self, graph):
        a = querylog_workload(graph, 30, seed=79)
        b = querylog_workload(graph, 30, seed=79)
        assert a == b

    def test_mix_shapes_all_present(self, graph):
        workload = querylog_workload(graph, 300, seed=80)
        stats = dispatch_statistics(workload)
        assert stats["alternation"] > 0
        assert stats["concatenation"] > 0
        assert stats["traversal_only"] > 0
        assert sum(stats.values()) == 300

    def test_custom_mix(self, graph):
        only_alternation = QueryLogMix(
            single_label=0,
            short_concatenation=0,
            transitive_single=0,
            alternation_star=1.0,
            concatenation_star=0,
            mixed=0,
        )
        workload = querylog_workload(graph, 40, seed=81, mix=only_alternation)
        stats = dispatch_statistics(workload)
        assert stats == {"alternation": 40, "concatenation": 0, "traversal_only": 0}

    def test_zero_mix_rejected(self, graph):
        empty = QueryLogMix(0, 0, 0, 0, 0, 0)
        with pytest.raises(ValueError):
            querylog_workload(graph, 5, seed=82, mix=empty)

    def test_default_mix_normalises(self):
        pairs = DEFAULT_MIX.normalized()
        assert abs(sum(w for _s, w in pairs) - 1.0) < 1e-9


class TestOracleCoverage:
    def test_oracle_answers_the_whole_log_exactly(self, graph):
        """§5: indexes + traversal fallback must cover every shape."""
        oracle = PathReachabilityOracle(graph)
        workload = querylog_workload(graph, 120, seed=83)
        for query in workload:
            answer = oracle.reachable(query.source, query.target, query.constraint)
            assert answer == query.reachable, query
