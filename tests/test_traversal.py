"""Tests for the online traversal baselines (§2.3)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.digraph import DiGraph
from repro.traversal.online import (
    ancestors,
    bfs_reachable,
    bibfs_reachable,
    descendants,
    dfs_reachable,
)


class TestReachability:
    def test_trivial_self_reachability(self, small_dag):
        for v in small_dag.vertices():
            assert bfs_reachable(small_dag, v, v)
            assert dfs_reachable(small_dag, v, v)
            assert bibfs_reachable(small_dag, v, v)

    def test_known_paths(self, small_dag):
        assert bfs_reachable(small_dag, 0, 5)
        assert bfs_reachable(small_dag, 0, 6)
        assert not bfs_reachable(small_dag, 5, 0)
        assert not bfs_reachable(small_dag, 1, 6)
        assert not bfs_reachable(small_dag, 0, 7)

    def test_cycles_handled(self, cyclic_graph):
        assert bfs_reachable(cyclic_graph, 0, 5)
        assert dfs_reachable(cyclic_graph, 2, 0)
        assert bibfs_reachable(cyclic_graph, 1, 4)
        assert not bfs_reachable(cyclic_graph, 3, 0)

    def test_descendants_and_ancestors(self, small_dag):
        assert descendants(small_dag, 2) == {2, 3, 4, 5, 6}
        assert ancestors(small_dag, 3) == {0, 1, 2, 3}
        assert descendants(small_dag, 7) == {7}


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_three_traversals_agree(data):
    """BFS, DFS and BiBFS are interchangeable on arbitrary digraphs."""
    n = data.draw(st.integers(2, 20))
    edges = data.draw(
        st.lists(st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)), max_size=60)
    )
    graph = DiGraph(n)
    for u, v in edges:
        if u != v:
            graph.add_edge_if_absent(u, v)
    s = data.draw(st.integers(0, n - 1))
    t = data.draw(st.integers(0, n - 1))
    expected = t in descendants(graph, s)
    assert bfs_reachable(graph, s, t) == expected
    assert dfs_reachable(graph, s, t) == expected
    assert bibfs_reachable(graph, s, t) == expected
    assert (s in ancestors(graph, t)) == expected
