"""The exception hierarchy: everything the library raises is a ReproError."""

from __future__ import annotations

import pytest

from repro.errors import (
    ConstraintSyntaxError,
    EdgeError,
    GraphError,
    IndexBuildError,
    NotADAGError,
    QueryError,
    ReproError,
    UnsupportedConstraintError,
    UnsupportedOperationError,
    VertexError,
)


@pytest.mark.parametrize(
    "exc",
    [
        GraphError,
        VertexError,
        EdgeError,
        NotADAGError,
        IndexBuildError,
        UnsupportedOperationError,
        QueryError,
        ConstraintSyntaxError,
        UnsupportedConstraintError,
    ],
)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)
    with pytest.raises(ReproError):
        raise exc("boom")


def test_hierarchy_shape():
    assert issubclass(VertexError, GraphError)
    assert issubclass(EdgeError, GraphError)
    assert issubclass(NotADAGError, GraphError)
    assert issubclass(ConstraintSyntaxError, QueryError)
    assert issubclass(UnsupportedConstraintError, QueryError)


def test_single_catch_covers_library_failures():
    """One except clause is enough for callers, as documented."""
    from repro.graphs.digraph import DiGraph

    failures = 0
    for action in (
        lambda: DiGraph(-1),
        lambda: DiGraph(2).remove_edge(0, 1),
        lambda: DiGraph(2).add_edge(0, 9),
    ):
        try:
            action()
        except ReproError:
            failures += 1
    assert failures == 3
