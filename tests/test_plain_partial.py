"""Partial-index lookup contracts (§3.1, §3.3, §5).

The survey's taxonomy hinges on which side of a partial index is exact:

* *no false negatives* (GRAIL, Ferrari, IP, BFL, DBL, DAGGER, Feline,
  Preach, O'Reach): a NO probe must imply non-reachability;
* *no false positives* (GRIPP, Tree+SSPI — and YES probes of every
  index): a YES probe must imply reachability;
* complete indexes never answer MAYBE.
"""

from __future__ import annotations

import pytest

from repro.core.base import TriState
from repro.core.registry import all_plain_indexes
from repro.graphs.generators import cyclic_communities, random_dag
from repro.traversal.online import bfs_reachable

PLAIN = all_plain_indexes()
COMPLETE = sorted(n for n, c in PLAIN.items() if c.metadata.complete)
PARTIAL = sorted(n for n, c in PLAIN.items() if not c.metadata.complete)

# partial indexes whose NO answers are certificates (no false negatives)
NO_FALSE_NEGATIVE = sorted(
    set(PARTIAL)
    - {"GRIPP", "Tree+SSPI"}  # these are the no-false-positive family
)


def _graph_for(name):
    if PLAIN[name].metadata.input_kind == "DAG":
        return random_dag(45, 110, seed=21)
    return cyclic_communities(5, 4, 12, seed=21)


@pytest.mark.parametrize("name", COMPLETE)
def test_complete_indexes_never_answer_maybe(name):
    graph = _graph_for(name)
    index = PLAIN[name].build(graph)
    for s in range(graph.num_vertices):
        for t in range(graph.num_vertices):
            assert index.lookup(s, t) is not TriState.MAYBE


@pytest.mark.parametrize("name", sorted(PLAIN))
def test_yes_probes_are_always_correct(name):
    """No index — partial or complete — may emit a false YES."""
    graph = _graph_for(name)
    index = PLAIN[name].build(graph)
    for s in range(graph.num_vertices):
        for t in range(graph.num_vertices):
            if index.lookup(s, t) is TriState.YES:
                assert bfs_reachable(graph, s, t), (name, s, t)


@pytest.mark.parametrize("name", sorted(PLAIN))
def test_no_probes_are_always_correct(name):
    """A NO probe is a non-reachability certificate for every index."""
    graph = _graph_for(name)
    index = PLAIN[name].build(graph)
    for s in range(graph.num_vertices):
        for t in range(graph.num_vertices):
            if index.lookup(s, t) is TriState.NO:
                assert not bfs_reachable(graph, s, t), (name, s, t)


@pytest.mark.parametrize("name", NO_FALSE_NEGATIVE)
def test_no_false_negative_indexes_catch_some_negatives(name):
    """§5: these indexes exist to kill negative queries by lookup alone."""
    graph = _graph_for(name)
    index = PLAIN[name].build(graph)
    hits = 0
    total = 0
    for s in range(graph.num_vertices):
        for t in range(graph.num_vertices):
            if s != t and not bfs_reachable(graph, s, t):
                total += 1
                if index.lookup(s, t) is TriState.NO:
                    hits += 1
    assert total > 0
    # the filter has to be useful, not merely sound
    assert hits / total > 0.3, f"{name} pruned only {hits}/{total} negatives"


@pytest.mark.parametrize("name", ["GRIPP", "Tree+SSPI"])
def test_no_false_positive_indexes_catch_some_positives(name):
    graph = _graph_for(name)
    index = PLAIN[name].build(graph)
    hits = 0
    total = 0
    for s in range(graph.num_vertices):
        for t in range(graph.num_vertices):
            if bfs_reachable(graph, s, t):
                total += 1
                if index.lookup(s, t) is TriState.YES:
                    hits += 1
    assert hits / total > 0.3, f"{name} certified only {hits}/{total} positives"


@pytest.mark.parametrize("name", PARTIAL)
def test_guided_traversal_resolves_every_maybe(name):
    """query() must be exact even where lookup() says MAYBE."""
    graph = _graph_for(name)
    # starve the filter-style indexes so MAYBEs actually occur at this scale
    params = {"DBL": {"num_hubs": 1, "bits": 4}, "BFL": {"bits": 4}, "IP": {"k": 1}}
    index = PLAIN[name].build(graph, **params.get(name, {}))
    maybes = 0
    for s in range(graph.num_vertices):
        for t in range(graph.num_vertices):
            if index.lookup(s, t) is TriState.MAYBE:
                maybes += 1
                assert index.query(s, t) == bfs_reachable(graph, s, t)
    assert maybes > 0, f"{name} never answered MAYBE on this graph"
