"""Differential matrix for the set-enumeration API (reachable/reaching).

Every family's ``reachable_from``/``reaching_to`` must equal the BFS
oracle's descendant/ancestor sets (plus the vertex itself) on every
graph shape, the explain variants must agree with the plain calls on
count and members, and each family must report its documented
enumeration route.
"""

from __future__ import annotations

import pytest

from repro.core.condensed import CondensedIndex
from repro.core.registry import all_plain_indexes
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import cyclic_communities, random_dag
from repro.graphs.topo import is_dag
from repro.kernels import ancestors_set, csr_of, descendants_set
from repro.shard.engine import ShardedIndex

PLAIN = all_plain_indexes()
FAST = sorted(
    set(PLAIN) - {"2-Hop", "Dual labeling", "Path-hop"}  # quadratic regimes
)

# the per-family fast-path routes documented on the enumeration API;
# families absent here take the guided-traversal default
EXPECTED_ROUTES = {
    "TC": "enum_closure",
    "PLL": "enum_label_join",
    "DL": "enum_label_join",
    "TOL": "enum_label_join",
    "TFL": "enum_label_join",
    "U2-hop": "enum_label_join",
    "Ralf et al.": "enum_label_join",
    "Sharded": "enum_compose",
    "Tree cover": "enum_interval",
    "GRAIL": "enum_interval",
    "DAGGER": "enum_interval",
}


def _shapes() -> list[tuple[str, DiGraph]]:
    return [
        ("diamond-dag", DiGraph(8, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 5), (2, 4), (4, 6)])),
        ("small-cyclic", DiGraph(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3), (4, 5)])),
        ("random-dag", random_dag(40, 90, seed=701)),
        ("cyclic-communities", cyclic_communities(4, 4, 10, seed=702)),
    ]


def _build(name: str, graph: DiGraph):
    cls = PLAIN[name]
    if cls.metadata.input_kind == "DAG" and not is_dag(graph):
        return CondensedIndex.build(graph, inner=cls)
    return cls.build(graph)


def _oracle(graph: DiGraph, vertex: int, forward: bool) -> frozenset[int]:
    csr = csr_of(graph)
    reach = descendants_set(csr, vertex) if forward else ancestors_set(csr, vertex)
    return frozenset(reach) | {vertex}


@pytest.mark.parametrize("name", FAST)
def test_enumeration_matrix(name):
    """Both directions equal the BFS oracle on every shape, every vertex."""
    for shape, graph in _shapes():
        index = _build(name, graph)
        for vertex in range(graph.num_vertices):
            for forward in (True, False):
                expected = _oracle(graph, vertex, forward)
                got = (
                    index.reachable_from(vertex)
                    if forward
                    else index.reaching_to(vertex)
                )
                assert got == expected, (
                    f"{name} on {shape}: vertex {vertex} "
                    f"{'forward' if forward else 'backward'}"
                )


@pytest.mark.parametrize("name", FAST)
def test_enumeration_explain_agreement(name):
    """explain_* reports the same members/count/route as the plain call."""
    graph = random_dag(30, 70, seed=703)
    index = _build(name, graph)
    for vertex in (0, 7, 15, 29):
        plain = index.reachable_from(vertex)
        explained = index.explain_reachable_from(vertex)
        assert explained.count == len(plain)
        assert explained.direction == "from"
        assert explained.vertex == vertex
        expected_route = EXPECTED_ROUTES.get(name, "enum_traversal")
        assert explained.route == expected_route, (
            f"{name}: route {explained.route!r} != {expected_route!r}"
        )
        back = index.explain_reaching_to(vertex)
        assert back.count == len(index.reaching_to(vertex))
        assert back.direction == "to"


@pytest.mark.parametrize("name", ["TC", "PLL", "GRAIL", "Tree cover", "DAGGER"])
def test_condensed_enumeration(name):
    """CondensedIndex expands SCCs and reports the inner family's route."""
    for shape, graph in _shapes():
        if is_dag(graph):
            continue
        index = CondensedIndex.build(graph, inner=PLAIN[name])
        for vertex in range(graph.num_vertices):
            assert index.reachable_from(vertex) == _oracle(graph, vertex, True)
            assert index.reaching_to(vertex) == _oracle(graph, vertex, False)
        explained = index.explain_reachable_from(0)
        assert explained.route == EXPECTED_ROUTES.get(name, "enum_traversal")
        assert any("condensed" in d for d in explained.details)


@pytest.mark.parametrize("num_shards", [1, 2, 4])
def test_sharded_enumeration(num_shards):
    """Sharded enumeration composes shards exactly, route enum_compose."""
    for shape, graph in _shapes():
        if not is_dag(graph):  # sharding partitions a topological order
            continue
        index = ShardedIndex.build(graph, num_shards=num_shards, family="PLL")
        for vertex in range(graph.num_vertices):
            assert index.reachable_from(vertex) == _oracle(graph, vertex, True), (
                f"k={num_shards} on {shape}: vertex {vertex} forward"
            )
            assert index.reaching_to(vertex) == _oracle(graph, vertex, False), (
                f"k={num_shards} on {shape}: vertex {vertex} backward"
            )
        explained = index.explain_reachable_from(0)
        assert explained.route == "enum_compose"
        assert explained.count == len(index.reachable_from(0))
