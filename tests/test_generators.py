"""Tests for the synthetic graph generators."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graphs.generators import (
    cyclic_communities,
    gnp_digraph,
    layered_dag,
    random_dag,
    random_labeled_digraph,
    random_tree,
    scale_free_dag,
    tree_with_shortcuts,
    with_random_labels,
)
from repro.graphs.scc import strongly_connected_components
from repro.graphs.topo import is_dag


class TestRandomDag:
    def test_exact_edge_count(self):
        graph = random_dag(30, 80, seed=1)
        assert graph.num_edges == 80
        assert is_dag(graph)

    def test_deterministic_for_seed(self):
        a = random_dag(20, 40, seed=5)
        b = random_dag(20, 40, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        a = random_dag(20, 40, seed=5)
        b = random_dag(20, 40, seed=6)
        assert a != b

    def test_too_many_edges_rejected(self):
        with pytest.raises(GraphError):
            random_dag(3, 10, seed=0)


class TestOtherFamilies:
    def test_gnp_probability_bounds(self):
        with pytest.raises(GraphError):
            gnp_digraph(5, 1.5, seed=0)
        graph = gnp_digraph(10, 1.0, seed=0)
        assert graph.num_edges == 90  # complete digraph without self-loops

    def test_scale_free_is_dag_with_skew(self):
        graph = scale_free_dag(200, 3, seed=2)
        assert is_dag(graph)
        degrees = sorted((graph.in_degree(v) for v in graph.vertices()), reverse=True)
        # preferential attachment concentrates in-degree at the top
        assert degrees[0] >= 4 * max(1, degrees[len(degrees) // 2])

    def test_random_tree_shape(self):
        graph = random_tree(50, seed=3)
        assert graph.num_edges == 49
        roots = [v for v in graph.vertices() if graph.in_degree(v) == 0]
        assert roots == [0]
        assert all(graph.in_degree(v) == 1 for v in range(1, 50))

    def test_tree_with_shortcuts_adds_forward_edges(self):
        tree = random_tree(40, seed=4)
        graph = tree_with_shortcuts(40, 10, seed=4)
        assert graph.num_edges == tree.num_edges + 10
        assert is_dag(graph)

    def test_layered_dag_levels(self):
        graph = layered_dag(4, 5, 2, seed=5)
        assert graph.num_vertices == 20
        assert is_dag(graph)
        # sinks are exactly the last layer
        sinks = [v for v in graph.vertices() if graph.out_degree(v) == 0]
        assert sinks == list(range(15, 20))

    def test_cyclic_communities_scc_structure(self):
        graph = cyclic_communities(4, 6, 8, seed=6)
        components = strongly_connected_components(graph)
        sizes = sorted(len(c) for c in components)
        assert sizes == [6, 6, 6, 6]


class TestLabeledGenerators:
    def test_with_random_labels_preserves_structure(self):
        base = random_dag(25, 60, seed=7)
        labeled = with_random_labels(base, ["x", "y"], seed=8)
        assert labeled.num_edges == base.num_edges
        assert labeled.to_plain() == base
        assert set(labeled.labels()) == {"x", "y"}

    def test_label_skew_biases_first_label(self):
        base = random_dag(100, 400, seed=9)
        labeled = with_random_labels(base, ["hot", "cold"], seed=10, skew=2.0)
        hot = sum(1 for _u, _v, label in labeled.edges() if label == "hot")
        assert hot > labeled.num_edges * 0.6

    def test_empty_label_list_rejected(self):
        with pytest.raises(GraphError):
            with_random_labels(random_dag(5, 4, seed=0), [], seed=0)

    def test_random_labeled_digraph_modes(self):
        dag = random_labeled_digraph(20, 40, ["a"], seed=11, acyclic=True)
        assert is_dag(dag.to_plain())
        cyclic = random_labeled_digraph(20, 60, ["a", "b"], seed=11)
        assert cyclic.num_edges == 60
