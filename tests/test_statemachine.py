"""Model-based (hypothesis state machine) testing of dynamic indexes.

Hypothesis drives arbitrary interleavings of inserts, deletes and
queries against a dynamic index, with plain BFS over the live graph as
the model.  This is the strongest correctness net over the §3.2
maintenance algorithms: the canonical-labels repair bug (see
``repro.plain.pruned.covered_below``) is exactly the class of defect
these machines are built to catch.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, precondition, rule

from repro.core.registry import plain_index
from repro.graphs.generators import random_dag
from repro.traversal.online import bfs_reachable

N = 14


class _DynamicIndexMachine(RuleBasedStateMachine):
    """Shared machine body; subclasses pick the index under test."""

    index_name: str = "TOL"
    requires_dag: bool = True

    def __init__(self) -> None:
        super().__init__()
        graph = random_dag(N, 20, seed=9)
        self.index = plain_index(self.index_name).build(graph)
        self.graph = self.index.graph

    @rule(u=st.integers(0, N - 1), v=st.integers(0, N - 1))
    def insert(self, u: int, v: int) -> None:
        if u == v or self.graph.has_edge(u, v):
            return
        if self.requires_dag and bfs_reachable(self.graph, v, u):
            return
        self.index.insert_edge(u, v)

    @precondition(lambda self: self.graph.num_edges > 0)
    @rule(pick=st.integers(0, 10_000))
    def delete(self, pick: int) -> None:
        edges = list(self.graph.edges())
        u, v = edges[pick % len(edges)]
        self.index.delete_edge(u, v)

    @rule(s=st.integers(0, N - 1), t=st.integers(0, N - 1))
    def query(self, s: int, t: int) -> None:
        assert self.index.query(s, t) == bfs_reachable(self.graph, s, t)

    @rule()
    def audit_all_pairs(self) -> None:
        for s in range(N):
            for t in range(N):
                assert self.index.query(s, t) == bfs_reachable(self.graph, s, t)


def _machine_for(name: str, dag: bool) -> type:
    return type(
        f"Machine_{name}",
        (_DynamicIndexMachine,),
        {"index_name": name, "requires_dag": dag},
    )


_SETTINGS = settings(max_examples=12, stateful_step_count=25, deadline=None)

TestTOLMachine = _machine_for("TOL", dag=True).TestCase
TestTOLMachine.settings = _SETTINGS

TestU2HopMachine = _machine_for("U2-hop", dag=True).TestCase
TestU2HopMachine.settings = _SETTINGS

TestHOPIMachine = _machine_for("Ralf et al.", dag=False).TestCase
TestHOPIMachine.settings = _SETTINGS

TestPathTreeMachine = _machine_for("Path-tree", dag=True).TestCase
TestPathTreeMachine.settings = _SETTINGS

TestIPMachine = _machine_for("IP", dag=True).TestCase
TestIPMachine.settings = _SETTINGS

TestDAGGERMachine = _machine_for("DAGGER", dag=True).TestCase
TestDAGGERMachine.settings = _SETTINGS


class _DLCRMachine(RuleBasedStateMachine):
    """Labeled dynamic index against constrained-BFS ground truth."""

    def __init__(self) -> None:
        super().__init__()
        from repro.graphs.generators import random_labeled_digraph

        graph = random_labeled_digraph(10, 18, ["a", "b"], seed=10)
        from repro.core.registry import labeled_index

        self.index = labeled_index("DLCR").build(graph)
        self.graph = self.index.graph

    @rule(
        u=st.integers(0, 9),
        v=st.integers(0, 9),
        label=st.sampled_from(["a", "b"]),
    )
    def insert(self, u: int, v: int, label: str) -> None:
        if u == v or self.graph.has_edge(u, v, label):
            return
        self.index.insert_edge(u, v, label)

    @precondition(lambda self: self.graph.num_edges > 0)
    @rule(pick=st.integers(0, 10_000))
    def delete(self, pick: int) -> None:
        edges = list(self.graph.edges())
        u, v, label = edges[pick % len(edges)]
        self.index.delete_edge(u, v, label)

    @rule(
        s=st.integers(0, 9),
        t=st.integers(0, 9),
        constraint=st.sampled_from(["(a)*", "(b)+", "(a|b)*", "(a|b)+"]),
    )
    def query(self, s: int, t: int, constraint: str) -> None:
        from repro.traversal.rpq import rpq_reachable

        expected = rpq_reachable(self.graph, s, t, constraint)
        assert self.index.query(s, t, constraint) == expected


TestDLCRMachine = _DLCRMachine.TestCase
TestDLCRMachine.settings = settings(
    max_examples=10, stateful_step_count=20, deadline=None
)
