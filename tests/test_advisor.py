"""Tests for repro.advisor and the service's online re-optimization.

The decision-matrix tests run the advisor over four structurally
distinct graph shapes × several byte budgets and assert the *contract*
of an advice, not a specific winner: the recommendation builds on the
advised graph, answers a differential sample identically to the BFS
oracle, and fits the budget it was given.  The service tests hammer a
live index swap from reader threads to show adoption never produces a
wrong or torn answer.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.advisor import (
    DEFAULT_CANDIDATES,
    NO_FALSE_NEGATIVE,
    advise,
    graph_features,
    priors,
    probe_graph,
    workload_features,
    workload_from_metrics,
)
from repro.core.registry import plain_index
from repro.errors import ReproError
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import (
    community_dag,
    cyclic_communities,
    gnp_digraph,
    layered_dag,
    with_random_labels,
)
from repro.service import AdvisorLoop, ReachabilityService
from repro.service.server import serve
from repro.traversal.online import bfs_reachable
from repro.workloads.queries import plain_workload


def _shapes() -> dict[str, DiGraph]:
    return {
        # deep chain: 80 layers of 2, fully wired — long paths, narrow levels
        "deep_chain": layered_dag(layers=80, width=2, edges_per_vertex=2, seed=11),
        # wide shallow: 3 layers of 50 — hub-friendly, tiny depth
        "wide_shallow": layered_dag(layers=3, width=50, edges_per_vertex=6, seed=12),
        # dense cyclic: G(n,p) with big SCCs
        "dense_cyclic": gnp_digraph(120, 0.08, seed=13),
        # community DAG: dense blocks, sparse forward edges
        "community": community_dag(6, 25, seed=14),
    }


SHAPE_NAMES = sorted(_shapes())


# ---------------------------------------------------------------- features
class TestFeatures:
    def test_deep_chain_profile(self):
        f = graph_features(_shapes()["deep_chain"])
        assert f.is_dag
        assert f.dag_depth > 4 * f.dag_width
        assert f.aspect_ratio > 4.0

    def test_wide_shallow_profile(self):
        f = graph_features(_shapes()["wide_shallow"])
        assert f.is_dag
        assert f.dag_width > f.dag_depth
        assert f.aspect_ratio < 1.0

    def test_dense_cyclic_profile(self):
        f = graph_features(_shapes()["dense_cyclic"])
        assert not f.is_dag
        assert f.largest_scc_fraction > 0.5
        assert f.condensation_vertices < f.num_vertices

    def test_labeled_graph_sets_cardinality(self):
        labeled = with_random_labels(_shapes()["deep_chain"], ["a", "b", "c"], seed=1)
        f = graph_features(labeled)
        assert f.label_cardinality == 3
        assert f.num_vertices == 160

    def test_workload_features_from_queries(self):
        g = _shapes()["deep_chain"]
        wl = plain_workload(g, 200, positive_fraction=0.2, seed=3)
        f = workload_features(wl)
        assert f.num_queries == 200
        assert 0.1 <= f.positive_fraction <= 0.3
        assert f.negative_heavy

    def test_workload_features_from_raw_pairs(self):
        f = workload_features([(0, 1), (0, 1), (0, 1), (2, 3)])
        assert f.positive_fraction is None
        assert f.num_queries == 4
        assert f.distinct_pair_fraction == 0.5

    def test_workload_from_metrics(self):
        metrics = {
            "service": {
                "queries": {"cache": 700, "plain_index": 300},
                "updates_applied": 50,
            },
            "cache": {"hit_rate": 0.7},
        }
        f = workload_from_metrics(metrics)
        assert f.num_queries == 1000
        assert f.cache_hit_rate == 0.7
        assert f.update_fraction == pytest.approx(50 / 1050)

    def test_workload_from_empty_metrics_is_none(self):
        assert workload_from_metrics({}) is None
        assert workload_features(None, None) is None


# ---------------------------------------------------------------- rules
class TestRules:
    def test_priors_cover_all_default_candidates(self):
        ranked = priors(graph_features(_shapes()["deep_chain"]))
        assert {p.family for p in ranked} == set(DEFAULT_CANDIDATES)

    def test_tc_excluded_on_huge_predicted_closure(self):
        # A dense 4000-vertex DAG predicts a closure past the cap.
        g = layered_dag(layers=40, width=100, edges_per_vertex=8, seed=5)
        f = graph_features(g)
        tc = next(p for p in priors(f) if p.family == "TC")
        assert not tc.viable
        assert "cap" in tc.excluded

    def test_negative_heavy_workload_boosts_filters(self):
        g = _shapes()["deep_chain"]
        f = graph_features(g)
        neg = workload_features(plain_workload(g, 100, positive_fraction=0.1, seed=1))
        pos = workload_features(plain_workload(g, 100, positive_fraction=0.9, seed=1))
        grail_neg = next(p for p in priors(f, neg) if p.family == "GRAIL")
        grail_pos = next(p for p in priors(f, pos) if p.family == "GRAIL")
        assert grail_neg.query_units < grail_pos.query_units

    def test_no_false_negative_set_is_partial_only(self):
        for name in NO_FALSE_NEGATIVE:
            assert not plain_index(name).metadata.complete


# ---------------------------------------------------------------- probes
class TestProbes:
    def test_small_graph_probed_whole(self):
        g = _shapes()["deep_chain"]
        pg, sampled = probe_graph(g)
        assert pg is g
        assert not sampled

    def test_large_graph_sampled_down(self):
        g = layered_dag(layers=50, width=20, edges_per_vertex=3, seed=9)
        pg, sampled = probe_graph(g, max_vertices=100)
        assert sampled
        assert pg.num_vertices == 100
        # induced subgraph: every probe edge exists in the original
        assert pg.num_edges < g.num_edges


# ---------------------------------------------------------------- advise()
class TestDecisionMatrix:
    """Advisor contract over 4 graph shapes × budgets."""

    @pytest.mark.parametrize("shape", SHAPE_NAMES)
    def test_pick_builds_and_matches_oracle(self, shape):
        g = _shapes()[shape]
        wl = plain_workload(g, 150, positive_fraction=0.3, seed=21)
        advice = advise(g, wl, seed=21)
        index = advice.recommended.build(g)
        for q in wl[:60]:
            assert index.query(q.source, q.target) == q.reachable
        assert advice.recommended.rationale  # human-readable why
        assert advice.alternatives  # ranked alternatives present

    @pytest.mark.parametrize("shape", SHAPE_NAMES)
    def test_budgeted_pick_fits_budget(self, shape):
        g = _shapes()[shape]
        # A budget calibrated to what a bounded per-vertex family needs,
        # so at least the filter families can fit on every shape.
        floor = plain_index("BFL").build(*_dag_of(g)).estimated_bytes()
        budget = max(4 * floor, 16_384)
        advice = advise(g, budget_bytes=budget, seed=22)
        pick = advice.recommended
        assert pick.fits_budget
        assert pick.predicted_bytes <= budget
        # The *actual* built index must respect the budget too.
        built = pick.build(g)
        assert built.estimated_bytes() <= budget
        # And still answer exactly.
        wl = plain_workload(g, 80, positive_fraction=0.4, seed=23)
        for q in wl:
            assert built.query(q.source, q.target) == q.reachable

    def test_tight_budget_yields_hybrid(self):
        # A 600-vertex layered DAG where every complete family measures
        # several times larger than the smallest partial filter, so a
        # budget between the two floors forces the hybrid path.
        g = layered_dag(layers=30, width=20, edges_per_vertex=4, seed=14)
        filter_bytes = min(
            plain_index(name).build(g).estimated_bytes()
            for name in ("Feline", "GRAIL")
        )
        complete_bytes = min(
            plain_index(name).build(g).estimated_bytes()
            for name in ("PLL", "TOL", "TC", "Tree cover")
        )
        assert filter_bytes < complete_bytes  # the gap the test relies on
        budget = (filter_bytes + complete_bytes) // 2
        advice = advise(g, budget_bytes=budget, seed=24)
        assert advice.hybrid is not None
        assert advice.recommended.family in NO_FALSE_NEGATIVE
        assert advice.hybrid["cache_capacity"] >= 1024
        assert advice.recommended.predicted_bytes <= budget

    def test_impossible_budget_says_so(self):
        advice = advise(_shapes()["deep_chain"], budget_bytes=8, seed=25)
        assert not advice.recommended.fits_budget
        assert any("budget" in note for note in advice.recommended.rationale)

    def test_no_probe_is_instant_and_ranked(self):
        advice = advise(_shapes()["community"], probe=False)
        assert not advice.recommended.probed
        assert advice.recommended.score <= min(
            alt.score for alt in advice.alternatives
        )

    def test_advice_carries_provenance_envelope(self):
        advice = advise(_shapes()["deep_chain"], probe=False)
        for key in ("git_sha", "python", "platform", "date"):
            assert key in advice.provenance
        payload = advice.as_dict()
        assert payload["provenance"] == advice.provenance
        json.dumps(payload)  # the whole Advice must be JSON-serialisable

    def test_render_text_mentions_pick_and_shape(self):
        advice = advise(_shapes()["wide_shallow"], budget_bytes=10**9, probe=False)
        text = advice.render_text()
        assert advice.recommended.family in text
        assert "budget" in text
        assert "graph:" in text

    def test_empty_graph_rejected(self):
        with pytest.raises(ReproError):
            advise(DiGraph(0))

    def test_explicit_candidates_restrict_the_ranking(self):
        advice = advise(
            _shapes()["deep_chain"], candidates=["GRAIL", "BFL"], probe=False
        )
        names = {advice.recommended.family} | {
            a.family for a in advice.alternatives
        }
        assert names <= {"GRAIL", "BFL"}


def _dag_of(graph: DiGraph):
    """(graph,) ready for a DAG-only family: condensed when cyclic."""
    from repro.graphs.scc import condense
    from repro.graphs.topo import is_dag

    return (graph,) if is_dag(graph) else (condense(graph).dag,)


# ---------------------------------------------------------------- size reports
class TestSizeReports:
    @pytest.mark.parametrize(
        "name", ["PLL", "GRAIL", "BFL", "TC", "Feline", "TOL", "Ferrari"]
    )
    def test_uniform_surface_across_families(self, name):
        g = layered_dag(layers=10, width=4, edges_per_vertex=2, seed=31)
        index = plain_index(name).build(g)
        report = index.size_report()
        assert report.index == name
        assert report.entries == index.size_in_entries()
        assert report.estimated_bytes == index.estimated_bytes() > 0
        assert report.graph_vertices == g.num_vertices
        assert report.graph_edges == g.num_edges
        assert report.bytes_per_entry > 0
        assert report.as_dict()["estimated_bytes"] == report.estimated_bytes
        assert name in report.render_text()

    def test_estimated_bytes_excludes_the_graph(self):
        from repro.persistence import serialized_size_bytes

        g = layered_dag(layers=10, width=4, edges_per_vertex=2, seed=32)
        index = plain_index("PLL").build(g)
        with_graph = serialized_size_bytes(index, include_graph=True)
        assert index.estimated_bytes() < with_graph


# ---------------------------------------------------------------- registry errors
class TestRegistrySuggestions:
    def test_unknown_plain_lists_known_and_suggests(self):
        with pytest.raises(ReproError) as err:
            plain_index("GRAL")
        message = str(err.value)
        assert "did you mean 'GRAIL'?" in message
        assert "known:" in message
        assert "PLL" in message

    def test_case_slip_suggests_exact_family(self):
        with pytest.raises(ReproError) as err:
            plain_index("pll")
        assert "did you mean 'PLL'?" in str(err.value)

    def test_hopeless_name_still_lists_known(self):
        with pytest.raises(ReproError) as err:
            plain_index("zzzzqqqq")
        message = str(err.value)
        assert "did you mean" not in message
        assert "known:" in message

    def test_unknown_labeled_suggests(self):
        from repro.core.registry import labeled_index

        with pytest.raises(ReproError) as err:
            labeled_index("dlcr")
        assert "did you mean 'DLCR'?" in str(err.value)


# ---------------------------------------------------------------- service loop
class TestAdvisorLoop:
    def test_first_tick_adopts_or_keeps(self):
        g = layered_dag(layers=30, width=4, edges_per_vertex=2, seed=41)
        service = ReachabilityService(g, index="PLL")
        loop = AdvisorLoop(service, min_queries=5)
        summary = loop.tick()
        assert summary["action"] in ("adopted", "kept")
        assert loop.last_advice is not None
        assert service.index_name == loop.last_advice.recommended.family

    def test_quiet_service_skips_reoptimization(self):
        g = layered_dag(layers=30, width=4, edges_per_vertex=2, seed=42)
        service = ReachabilityService(g, index="PLL")
        loop = AdvisorLoop(service, min_queries=50)
        loop.tick()
        summary = loop.tick()  # no new traffic since the first decision
        assert summary["action"] == "skipped"
        advisor = service.metrics_dict()["service"]["advisor"]
        assert advisor["ticks"] == 2
        assert advisor["skipped"] == 1

    def test_graph_drift_triggers_readvice(self):
        g = layered_dag(layers=30, width=4, edges_per_vertex=2, seed=43)
        service = ReachabilityService(g, index="PLL")
        loop = AdvisorLoop(service, min_queries=10**9)  # only updates trigger
        loop.tick()
        from repro.workloads.updates import EdgeOp

        service.apply_updates([EdgeOp("insert", 0, 119)])
        summary = loop.tick()
        assert summary["action"] in ("adopted", "kept")
        assert "drift" in summary["reason"]

    def test_stale_build_is_discarded(self):
        g = layered_dag(layers=30, width=4, edges_per_vertex=2, seed=44)
        service = ReachabilityService(g, index="PLL")
        snap = service.acquire()
        prebuilt = plain_index("GRAIL").build(snap.graph.copy())  # wrong graph object
        assert service.adopt_index("GRAIL", prebuilt=prebuilt) is None
        from repro.workloads.updates import EdgeOp

        service.apply_updates([EdgeOp("insert", 0, 5)])
        built = plain_index("GRAIL").build(snap.graph)
        assert (
            service.adopt_index("GRAIL", prebuilt=built, expected_epoch=snap.epoch)
            is None
        )
        assert service.index_name == "PLL"
        stale = service.metrics_dict()["service"]["advisor"]["stale_builds"]
        assert stale == 2

    def test_adopt_unknown_family_raises_before_locking(self):
        g = layered_dag(layers=5, width=3, edges_per_vertex=1, seed=45)
        service = ReachabilityService(g, index="PLL")
        with pytest.raises(ReproError):
            service.adopt_index("PLLL")
        assert service.index_name == "PLL"

    def test_background_thread_starts_and_stops(self):
        g = layered_dag(layers=10, width=3, edges_per_vertex=2, seed=46)
        service = ReachabilityService(g, index="PLL")
        loop = AdvisorLoop(service, interval_s=0.01, probe=False, min_queries=1)
        thread = loop.start()
        assert thread.is_alive()
        assert loop.start() is thread  # idempotent
        deadline = 50
        while service.metrics_dict()["service"]["advisor"]["ticks"] == 0 and deadline:
            deadline -= 1
            threading.Event().wait(0.02)
        loop.stop()
        assert not thread.is_alive()
        assert service.metrics_dict()["service"]["advisor"]["ticks"] >= 1


class TestLiveSwapUnderFire:
    """The acceptance hammer: swaps must never wrong-answer a reader."""

    def test_hammered_swaps_stay_exact(self):
        g = cyclic_communities(8, 5, inter_edges=20, seed=51)
        service = ReachabilityService(g, index="PLL", cache_capacity=None)
        wl = plain_workload(g, 60, positive_fraction=0.5, seed=52)
        truth = {(q.source, q.target): q.reachable for q in wl}
        errors: list[str] = []
        stop = threading.Event()

        def reader() -> None:
            while not stop.is_set():
                for (s, t), expected in truth.items():
                    if service.reach(s, t) != expected:
                        errors.append(f"{s}->{t} wrong")
                        return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        families = ["GRAIL", "BFL", "TC", "Feline", "PLL"] * 3
        for family in families:
            epoch = service.adopt_index(family)
            assert epoch is not None
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        assert not errors
        assert service.epoch >= len(families)
        assert service.index_name == "PLL"

    def test_swap_preserves_labeled_mode_state(self):
        labeled = with_random_labels(
            layered_dag(layers=10, width=3, edges_per_vertex=2, seed=53), ["a", "b"], seed=53
        )
        service = ReachabilityService(labeled)
        before = service.lreach(0, 5, "(a|b)*")
        service.adopt_index("GRAIL")
        assert service.lreach(0, 5, "(a|b)*") == before
        snap = service.acquire()
        assert snap.labeled is not None
        assert snap.labeled_graph is not None


# ---------------------------------------------------------------- HTTP
@pytest.fixture
def advised_server():
    g = layered_dag(layers=20, width=3, edges_per_vertex=2, seed=61)
    service = ReachabilityService(g, index="PLL")
    loop = AdvisorLoop(service, min_queries=5)
    server = serve(service, port=0, advisor=loop)
    server.start_background()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", service, loop
    server.shutdown()
    server.server_close()


def _get(url: str) -> tuple[int, dict]:
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read())


class TestAdviseEndpoint:
    def test_advise_returns_full_payload(self, advised_server):
        base, service, _loop = advised_server
        status, payload = _get(f"{base}/advise?probe=0")
        assert status == 200
        assert payload["recommended"]["family"]
        assert payload["serving"]["index"] == service.index_name
        assert payload["features"]["num_vertices"] == 60
        assert "provenance" in payload

    def test_advise_with_budget(self, advised_server):
        base, _service, _loop = advised_server
        status, payload = _get(f"{base}/advise?probe=0&budget_bytes=1000000000")
        assert status == 200
        assert payload["budget_bytes"] == 1_000_000_000
        assert payload["recommended"]["fits_budget"]

    def test_cached_before_any_tick_is_400(self, advised_server):
        base, _service, _loop = advised_server
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(f"{base}/advise?cached=1")
        assert err.value.code == 400

    def test_cached_after_tick_serves_loop_advice(self, advised_server):
        base, _service, loop = advised_server
        loop.tick()
        status, payload = _get(f"{base}/advise?cached=1")
        assert status == 200
        assert payload["last_action"]["action"] in ("adopted", "kept")
        assert payload["recommended"]["family"] == loop.last_advice.recommended.family

    def test_bad_budget_is_400(self, advised_server):
        base, _service, _loop = advised_server
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(f"{base}/advise?budget_bytes=lots")
        assert err.value.code == 400
