"""repro.slo: sketches, burn-rate objectives, OpenMetrics, shadow audit.

The acceptance spine of the telemetry layer:

* the sliding-window quantile sketch expires, merges, and stays bounded;
* objective parsing accepts the documented grammar and rejects the rest;
* a chaos-injected latency fault drives the fast-window burn rate over
  threshold and trips the breaker *pre-emptively* (degraded answers flow
  before queries ever fail);
* the shadow auditor replays served answers against the BFS oracle
  across a family matrix with zero mismatches, and captures a full
  trace when a mismatch is fabricated;
* every exposition ``render_openmetrics`` produces passes the strict
  ``validate_openmetrics`` checker, and the checker rejects the classic
  malformations.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.errors import ServiceError
from repro.graphs.generators import random_dag
from repro.obs.metrics import LatencyHistogram, MetricsRegistry
from repro.obs.sketch import WindowedQuantileSketch, WindowTotals
from repro.resilience import ChaosPolicy, Fault, chaos
from repro.service import ReachabilityService
from repro.slo import (
    Gauge,
    ShadowAuditor,
    SLOTracker,
    build_slo_payload,
    parse_objective,
    render_dashboard,
    render_openmetrics,
    service_openmetrics,
    validate_openmetrics,
)
from repro.traversal.online import bfs_reachable

BOUNDS = (1e-4, 1e-3, 1e-2, 1e-1)


# -- the sliding-window sketch ---------------------------------------------
class TestSketch:
    def test_window_sees_recent_observations(self):
        now = [0.0]
        sketch = WindowedQuantileSketch(
            BOUNDS, window_s=10.0, num_slices=10, clock=lambda: now[0]
        )
        for _ in range(100):
            sketch.observe(5e-4)
        totals = sketch.window()
        assert totals.count == 100
        assert totals.quantile(50) == pytest.approx(1e-3)
        assert totals.max_s == pytest.approx(5e-4)

    def test_old_slices_expire_but_cumulative_totals_do_not(self):
        now = [0.0]
        sketch = WindowedQuantileSketch(
            BOUNDS, window_s=10.0, num_slices=10, clock=lambda: now[0]
        )
        sketch.observe(5e-4)
        now[0] = 11.0  # beyond the window: the slice is stale
        assert sketch.window().count == 0
        assert sketch.total_count == 1

    def test_short_lookback_reads_fewer_slices(self):
        now = [0.0]
        sketch = WindowedQuantileSketch(
            BOUNDS, window_s=10.0, num_slices=10, clock=lambda: now[0]
        )
        sketch.observe(5e-4)  # lands in slice 0
        now[0] = 5.5
        sketch.observe(5e-2)  # lands in slice 5
        assert sketch.window(10.0).count == 2
        # A 1 s lookback keeps at most 2 slices (one extra for clamping);
        # slice 0 is 5 slices back and must be excluded.
        assert sketch.window(1.0).count == 1
        assert sketch.window(1.0).max_s == pytest.approx(5e-2)

    def test_merge_aligns_absolute_slices(self):
        now = [0.0]
        clock = lambda: now[0]  # noqa: E731 — both sketches share one clock
        first = WindowedQuantileSketch(
            BOUNDS, window_s=10.0, num_slices=10, clock=clock
        )
        second = WindowedQuantileSketch(
            BOUNDS, window_s=10.0, num_slices=10, clock=clock
        )
        first.observe(5e-4)
        now[0] = 3.0
        second.observe(5e-2)
        merged = WindowedQuantileSketch(
            BOUNDS, window_s=10.0, num_slices=10, clock=clock
        )
        merged.merge(first)
        merged.merge(second)
        assert merged.window().count == 2
        assert merged.total_count == 2
        # Advancing past slice 0 expires only the first observation.
        now[0] = 10.5
        assert merged.window().count == 1

    def test_merge_rejects_mismatched_geometry(self):
        sketch = WindowedQuantileSketch(BOUNDS, window_s=10.0, num_slices=10)
        other = WindowedQuantileSketch(BOUNDS, window_s=20.0, num_slices=10)
        with pytest.raises(ValueError):
            sketch.merge(other)

    def test_window_totals_merged_quantiles(self):
        first = WindowTotals(
            BOUNDS, [0, 99, 0, 0, 0], count=99, sum_s=99 * 5e-4,
            max_s=5e-4, window_s=10.0,
        )
        second = WindowTotals(  # one sample over the top bound: overflow
            BOUNDS, [0, 0, 0, 0, 1], count=1, sum_s=0.5, max_s=0.5,
            window_s=10.0,
        )
        combined = WindowTotals.merged([first, second])
        assert combined.count == 100
        assert combined.quantile(50) == pytest.approx(1e-3)
        assert combined.quantile(100) == pytest.approx(0.5)  # overflow -> max
        assert first.count == 99  # merged() copies, never mutates its parts


# -- objective parsing ------------------------------------------------------
class TestParseObjective:
    @pytest.mark.parametrize(
        ("spec", "kind", "subject", "threshold", "percentile"),
        [
            ("reach.p99 < 5ms", "latency", "reach", 5e-3, 99.0),
            ("cache.p95 < 100us", "latency", "cache", 1e-4, 95.0),
            ("batch.p50<2s", "latency", "batch", 2.0, 50.0),
            ("plain_index.p99.9 < 10ms", "latency", "plain_index", 1e-2, 99.9),
            ("error_rate < 0.1%", "rate", "error_rate", 1e-3, 0.0),
            ("unknown_rate < 1%", "rate", "unknown_rate", 1e-2, 0.0),
            ("error_rate < 0.25", "rate", "error_rate", 0.25, 0.0),
        ],
    )
    def test_grammar(self, spec, kind, subject, threshold, percentile):
        objective = parse_objective(spec)
        assert objective.kind == kind
        assert objective.subject == subject
        assert objective.threshold == pytest.approx(threshold)
        assert objective.percentile == pytest.approx(percentile)
        assert objective.spec == spec

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "reach.p99 > 5ms",  # only < is an SLO ceiling
            "reach.p99 < 5",  # latency needs a unit
            "reach.p99 < -5ms",
            "reach.p0 < 5ms",  # percentile must be > 0
            "reach.p101 < 5ms",
            "error_rate < 150%",
            "error_rate < 5ms",  # rates don't take latency units
            "nonsense < 1ms",  # no percentile suffix
        ],
    )
    def test_rejects_malformed(self, spec):
        with pytest.raises(ServiceError):
            parse_objective(spec)


# -- the tracker ------------------------------------------------------------
def _registry_with_route(route: str = "plain_index"):
    registry = MetricsRegistry()
    histogram = registry.histogram(f"service.latency.{route}")
    registry.counter(f"service.queries.{route}")
    return registry, histogram


class TestSLOTracker:
    def test_latency_breach_requires_both_windows(self):
        now = [0.0]
        registry = MetricsRegistry()
        histogram = LatencyHistogram(
            window_s=3600.0, num_slices=120, clock=lambda: now[0]
        )
        registry._histograms["service.latency.plain_index"] = histogram
        registry.counter("service.queries.plain_index").increment(10)
        tracker = SLOTracker(
            ["reach.p99 < 5ms"], registry, clock=lambda: now[0]
        )
        for _ in range(50):
            histogram.observe(0.05)  # 10x the 5ms objective
        status = tracker.evaluate()[0]
        assert status["breached"] is True
        assert status["burn_fast"] >= 10.0
        assert tracker.burning()
        assert tracker.breached_objectives() == ("reach_p99",)
        assert registry.counter("slo.breaches").value == 1

        # The slow window still remembers the burn after the fast window
        # clears: no breach (fast window has no samples at all).
        now[0] = 400.0
        status = tracker.evaluate()[0]
        assert status["breached"] is False
        assert not tracker.burning()

    def test_rate_objective_over_counter_deltas(self):
        now = [0.0]
        registry = MetricsRegistry()
        good = registry.counter("service.queries.plain_index")
        bad = registry.counter("service.queries.degraded")
        tracker = SLOTracker(
            ["error_rate < 10%"],
            registry,
            fast_window_s=60.0,
            slow_window_s=600.0,
            clock=lambda: now[0],
        )
        good.increment(80)
        bad.increment(20)  # 20% of traffic since attach
        now[0] = 30.0
        status = tracker.evaluate()[0]
        assert status["observed_fast"] == pytest.approx(0.2)
        assert status["breached"] is True

        # Traffic turns clean: the fast window recovers first.
        good.increment(1000)
        now[0] = 95.0  # the breach sample is now > fast_window old
        status = tracker.evaluate()[0]
        assert status["observed_fast"] < 0.02
        assert status["breached"] is False

    def test_breach_trips_breaker_preemptively(self):
        from repro.resilience import CircuitBreaker

        now = [0.0]
        registry = MetricsRegistry()
        histogram = LatencyHistogram(
            window_s=3600.0, num_slices=120, clock=lambda: now[0]
        )
        registry._histograms["service.latency.plain_index"] = histogram
        registry.counter("service.queries.plain_index").increment(1)
        breaker = CircuitBreaker("slo-test")
        tracker = SLOTracker(
            ["reach.p99 < 5ms"], registry, breaker=breaker, clock=lambda: now[0]
        )
        assert breaker.state == "closed"
        histogram.observe(0.5)
        tracker.evaluate()
        assert breaker.state == "open"
        assert breaker.snapshot()["trip_reason"] == "slo burn"

    def test_rejects_bad_windows(self):
        registry = MetricsRegistry()
        with pytest.raises(ServiceError):
            SLOTracker(["reach.p99 < 5ms"], registry, fast_window_s=600.0,
                       slow_window_s=60.0)


# -- the acceptance chaos test ---------------------------------------------
def test_chaos_latency_breaches_slo_and_degrades_service():
    """Injected query latency -> fast-window burn > 1 -> pre-emptive trip
    -> the very next queries take the degraded route (bounded UNKNOWNs or
    certificate hits), before any query *failed*."""
    graph = random_dag(40, 120, seed=808)
    service = ReachabilityService(graph, index="GRAIL", cache_capacity=None)
    tracker = SLOTracker(
        ["reach.p99 < 5ms"],
        service.metrics,
        breaker=service.breaker,
        fast_window_s=300.0,
        slow_window_s=3600.0,
    )
    policy = ChaosPolicy(
        [Fault(point="service.query", kind="delay", delay_s=0.02)], seed=9
    )
    with chaos(policy):
        for source in range(10):
            result = service.reach_ex(source, (source + 7) % 40)
            assert result.route == "plain_index"  # still healthy, just slow
    assert policy.injected_counts()  # the delays really fired

    status = tracker.evaluate()[0]
    assert status["burn_fast"] >= 1.0, status
    assert status["breached"] is True
    assert service.breaker.state == "open"
    assert service.metrics.counter("slo.breaches").value == 1

    # Pre-emptive degradation: the engine now refuses the index path.
    result = service.reach_ex(0, 39)
    assert result.route == "degraded"
    degraded = service.metrics.counter("service.queries.degraded").value
    assert degraded >= 1


def test_advisor_treats_slo_burn_as_drift():
    from repro.service import AdvisorLoop

    graph = random_dag(60, 180, seed=809)
    service = ReachabilityService(graph, index="GRAIL")
    tracker = SLOTracker(["reach.p99 < 5ms"], service.metrics)
    loop = AdvisorLoop(service, probe=False, slo_tracker=tracker)
    first = loop.tick()
    assert first["action"] in ("kept", "adopted")  # first tick always advises

    # No traffic, no drift: the loop skips.
    assert loop.tick()["action"] == "skipped"

    # Fabricate a burn: the tracker now reports breached objectives and
    # the loop re-advises immediately.
    service.metrics.counter("service.queries.plain_index").increment(1)
    service.metrics.histogram("service.latency.plain_index").observe(0.5)
    tracker.evaluate()
    assert tracker.burning()
    action = loop.tick()
    assert action["action"] in ("kept", "adopted")
    assert "SLO burn" in action["reason"]


# -- the shadow auditor -----------------------------------------------------
class TestShadowAuditor:
    @pytest.mark.parametrize("family", ["GRAIL", "PLL", "BFL", "TC", "IP"])
    def test_family_matrix_zero_mismatches(self, family):
        graph = random_dag(30, 90, seed=810)
        service = ReachabilityService(graph, index=family, cache_capacity=64)
        auditor = ShadowAuditor(
            sample_rate=1.0, metrics=service.metrics, max_queue=2048, seed=4
        )
        service.attach_auditor(auditor)
        for source in range(30):
            for target in range(0, 30, 3):
                service.reach(source, target)
        checked = auditor.drain()
        assert checked == auditor.status()["checked"]
        assert checked >= 300  # every query sampled (cache hits included)
        assert auditor.mismatches == 0
        assert auditor.status()["dropped"] == 0

    def test_batch_path_is_audited(self):
        graph = random_dag(25, 75, seed=811)
        service = ReachabilityService(graph, index="GRAIL")
        auditor = ShadowAuditor(
            sample_rate=1.0, metrics=service.metrics, max_queue=2048, seed=5
        )
        service.attach_auditor(auditor)
        pairs = [(s, (s * 3 + 1) % 25) for s in range(25)]
        service.execute_batch(pairs)
        service.execute_batch(pairs)  # second pass: cache-hit offers
        assert auditor.drain() > 0
        assert auditor.mismatches == 0

    def test_fabricated_mismatch_captures_trace(self):
        graph = random_dag(20, 60, seed=812)
        service = ReachabilityService(graph, index="GRAIL")
        auditor = ShadowAuditor(sample_rate=1.0, metrics=service.metrics)
        snapshot = service.acquire()
        source, target = 0, 11
        truth = bfs_reachable(snapshot.graph, source, target)
        auditor.offer(snapshot, source, target, not truth, "plain_index")
        auditor.drain()
        assert auditor.mismatches == 1
        trace = auditor.status()["traces"][0]
        assert trace["source"] == source and trace["target"] == target
        assert trace["served"] is (not truth)
        assert trace["oracle"] is truth
        assert trace["epoch"] == 0
        assert trace["route"] == "plain_index"
        assert "explain" in trace or "explain_error" in trace

    def test_queue_overflow_drops_and_counts(self):
        graph = random_dag(10, 20, seed=813)
        service = ReachabilityService(graph, index="GRAIL")
        auditor = ShadowAuditor(
            sample_rate=1.0, metrics=service.metrics, max_queue=2
        )
        snapshot = service.acquire()
        for _ in range(5):
            auditor.offer(snapshot, 0, 1, True, "cache")
        assert auditor.queue_depth == 2
        assert auditor.status()["dropped"] == 3

    def test_unknowns_are_never_offered(self):
        graph = random_dag(10, 20, seed=814)
        service = ReachabilityService(graph, index="GRAIL")
        auditor = ShadowAuditor(sample_rate=1.0, metrics=service.metrics)
        service.attach_auditor(auditor)
        service.breaker.trip(reason="test")
        result = service.reach_ex(0, 9)
        assert result.route == "degraded"
        if result.answer is None:  # UNKNOWN asserts nothing: not auditable
            assert auditor.queue_depth == 0


# -- OpenMetrics exposition -------------------------------------------------
class TestOpenMetrics:
    def test_service_exposition_round_trips_the_validator(self):
        graph = random_dag(25, 75, seed=815)
        service = ReachabilityService(graph, index="GRAIL")
        tracker = SLOTracker(
            ["reach.p99 < 5ms", "error_rate < 1%"],
            service.metrics,
        )
        auditor = ShadowAuditor(sample_rate=1.0, metrics=service.metrics)
        service.attach_auditor(auditor)
        for source in range(25):
            service.reach(source, (source + 3) % 25)
        auditor.drain()
        tracker.evaluate()
        text = service_openmetrics(service, tracker=tracker, auditor=auditor,
                                   uptime_s=12.5)
        stats = validate_openmetrics(text)
        assert stats["families"] > 10
        assert 'repro_service_queries_total{index="GRAIL",route="plain_index"}' in text
        assert 'repro_slo_burn_rate{' in text
        assert 'repro_slo_audit_total{' in text
        assert 'repro_service_uptime_seconds{index="GRAIL"} 12.5' in text

    def test_render_labels_escaped(self):
        registry = MetricsRegistry()
        gauge = Gauge(
            family="repro_test_info",
            value=1.0,
            labels={"path": 'C:\\tmp\n"x"'},
        )
        text = render_openmetrics([registry], gauges=[gauge])
        assert '\\\\tmp\\n\\"x\\"' in text
        validate_openmetrics(text)

    def test_histogram_buckets_cumulative_and_terminated(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("service.latency.cache")
        for sample in (1e-5, 1e-4, 1e-3, 1e-2, 20.0):
            histogram.observe(sample)
        text = render_openmetrics([registry])
        validate_openmetrics(text)
        lines = [
            line
            for line in text.splitlines()
            if line.startswith("repro_service_latency_seconds_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts)
        assert 'le="+Inf"' in lines[-1]
        assert counts[-1] == 5  # +Inf bucket sees everything, incl. 20s
        assert "repro_service_latency_seconds_count" in text
        assert "repro_service_latency_seconds_sum" in text

    @pytest.mark.parametrize(
        ("mutate", "reason"),
        [
            (lambda t: t.replace("# EOF\n", ""), "missing EOF"),
            (lambda t: t + "trailing 1\n", "sample after EOF"),
            (
                lambda t: t.replace(
                    "# TYPE repro_service_queries counter\n", ""
                ),
                "sample without TYPE",
            ),
            (
                lambda t: t.replace("_total{", "{", 1),
                "counter sample without _total",
            ),
            (
                lambda t: t.replace('route="cache"', 'route=cache', 1),
                "unquoted label value",
            ),
        ],
    )
    def test_validator_rejects_malformations(self, mutate, reason):
        registry = MetricsRegistry()
        registry.counter("service.queries.cache").increment(3)
        text = render_openmetrics([registry])
        validate_openmetrics(text)  # sane before mutation
        with pytest.raises(ValueError):
            validate_openmetrics(mutate(text))

    def test_validator_rejects_non_monotone_buckets(self):
        text = (
            "# TYPE repro_x histogram\n"
            'repro_x_bucket{le="0.1"} 5\n'
            'repro_x_bucket{le="1.0"} 3\n'
            'repro_x_bucket{le="+Inf"} 5\n'
            "repro_x_count 5\n"
            "repro_x_sum 0.5\n"
            "# EOF\n"
        )
        with pytest.raises(ValueError, match="cumulative"):
            validate_openmetrics(text)


# -- dashboard --------------------------------------------------------------
class TestDashboard:
    def test_payload_and_render(self):
        graph = random_dag(20, 60, seed=816)
        service = ReachabilityService(graph, index="GRAIL")
        tracker = SLOTracker(["reach.p99 < 5ms"], service.metrics)
        auditor = ShadowAuditor(sample_rate=1.0, metrics=service.metrics)
        service.attach_auditor(auditor)
        for source in range(20):
            service.reach(source, (source + 1) % 20)
        auditor.drain()
        tracker.evaluate()
        payload = build_slo_payload(
            service, tracker=tracker, auditor=auditor, uptime_s=3.0
        )
        assert payload["epoch"] == 0
        assert payload["queries_total"] == 20
        assert "plain_index" in payload["routes"]
        json.dumps(payload)  # the payload is what GET /slo serves

        frame = render_dashboard(payload)
        assert "SERVING" in frame
        assert "plain_index" in frame
        assert "reach.p99 < 5ms" in frame
        assert "mismatches 0" in frame

    def test_render_survives_missing_sections(self):
        graph = random_dag(10, 20, seed=817)
        service = ReachabilityService(graph, index="GRAIL")
        payload = build_slo_payload(service, draining=True)
        frame = render_dashboard(payload)
        assert "DRAINING" in frame
        assert "no tracker" in frame
        assert "no auditor" in frame


# -- HTTP + CLI integration -------------------------------------------------
def test_slo_endpoint_with_tracker_and_auditor_over_http():
    from repro.service.server import serve

    graph = random_dag(20, 60, seed=818)
    service = ReachabilityService(graph, index="GRAIL")
    tracker = SLOTracker(["reach.p99 < 100ms"], service.metrics)
    auditor = ShadowAuditor(sample_rate=1.0, metrics=service.metrics)
    service.attach_auditor(auditor)
    server = serve(service, port=0, slo_tracker=tracker, auditor=auditor)
    server.start_background()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    try:
        with urllib.request.urlopen(f"{base}/reach?source=0&target=5",
                                    timeout=10):
            pass
        auditor.drain()
        tracker.evaluate()
        with urllib.request.urlopen(f"{base}/slo", timeout=10) as response:
            payload = json.loads(response.read())
        assert payload["slo"]["objectives"][0]["objective"] == "reach_p99"
        assert payload["audit"]["mismatches"] == 0
        with urllib.request.urlopen(
            f"{base}/metrics?format=openmetrics", timeout=10
        ) as response:
            validate_openmetrics(response.read().decode())
    finally:
        server.shutdown()
        server.server_close()


def test_cli_top_once(capsys):
    from repro.cli import main
    from repro.service.server import serve

    graph = random_dag(15, 45, seed=819)
    service = ReachabilityService(graph, index="GRAIL")
    server = serve(service, port=0)
    server.start_background()
    host, port = server.server_address[:2]
    try:
        service.reach(0, 5)
        assert main(["top", f"http://{host}:{port}", "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "SERVING" in out
    finally:
        server.shutdown()
        server.server_close()


def test_cli_serve_rejects_bad_slo_spec(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "g.el"
    path.write_text("a b\nb c\n")
    code = main(["serve", str(path), "--port", "0", "--slo", "not an slo"])
    assert code == 2
    assert "bad SLO spec" in capsys.readouterr().err
