"""Tests for the path-constraint regular-expression parser (§2.2 grammar)."""

from __future__ import annotations

import pytest

from repro.errors import ConstraintSyntaxError
from repro.traversal.regex import (
    ConcatNode,
    LabelNode,
    PlusNode,
    StarNode,
    UnionNode,
    alternation_label_set,
    concatenation_sequence,
    parse_constraint,
    regex_to_string,
)


class TestParsing:
    def test_single_label(self):
        node = parse_constraint("friendOf")
        assert node == LabelNode("friendOf")

    def test_union_and_star(self):
        node = parse_constraint("(friendOf | follows)*")
        assert isinstance(node, StarNode)
        assert isinstance(node.inner, UnionNode)

    def test_unicode_operators(self):
        ascii_node = parse_constraint("(a | b)*")
        unicode_node = parse_constraint("(a ∪ b)*")
        assert ascii_node == unicode_node
        assert parse_constraint("(a . b)*") == parse_constraint("(a · b)*")

    def test_precedence_union_loosest(self):
        node = parse_constraint("a | b . c")
        assert isinstance(node, UnionNode)
        assert isinstance(node.right, ConcatNode)

    def test_kleene_binds_tightest(self):
        node = parse_constraint("a . b*")
        assert isinstance(node, ConcatNode)
        assert isinstance(node.right, StarNode)

    def test_juxtaposition_concatenates(self):
        assert parse_constraint("a b") == parse_constraint("a . b")

    def test_quoted_labels(self):
        node = parse_constraint("'works for' | \"knows\"")
        assert isinstance(node, UnionNode)
        assert node.left == LabelNode("works for")

    def test_plus(self):
        node = parse_constraint("(a)+")
        assert isinstance(node, PlusNode)

    def test_idempotent_on_nodes(self):
        node = parse_constraint("(a|b)*")
        assert parse_constraint(node) is node

    @pytest.mark.parametrize(
        "bad",
        ["", "(a", "a)", "*", "|a", "a |", "a $ b", "'unterminated"],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(ConstraintSyntaxError):
            parse_constraint(bad)


class TestClassification:
    def test_alternation_star(self):
        labels = alternation_label_set(parse_constraint("(a | b | c)*"))
        assert labels == frozenset({"a", "b", "c"})

    def test_alternation_plus_and_singleton(self):
        assert alternation_label_set(parse_constraint("(a)+")) == frozenset({"a"})
        assert alternation_label_set(parse_constraint("a*")) == frozenset({"a"})

    def test_not_alternation(self):
        assert alternation_label_set(parse_constraint("(a . b)*")) is None
        assert alternation_label_set(parse_constraint("a")) is None
        assert alternation_label_set(parse_constraint("(a | b . c)*")) is None

    def test_concatenation_star(self):
        seq = concatenation_sequence(parse_constraint("(a . b . c)*"))
        assert seq == ("a", "b", "c")

    def test_concatenation_plus_and_singleton(self):
        assert concatenation_sequence(parse_constraint("(a)+")) == ("a",)
        assert concatenation_sequence(parse_constraint("a*")) == ("a",)

    def test_not_concatenation(self):
        assert concatenation_sequence(parse_constraint("(a | b)*")) is None
        assert concatenation_sequence(parse_constraint("a . b")) is None


class TestRendering:
    @pytest.mark.parametrize(
        "text",
        ["a", "(a . b)", "(a | b)", "a*", "a+", "((a | b) . c)*"],
    )
    def test_round_trip(self, text):
        node = parse_constraint(text)
        assert parse_constraint(regex_to_string(node)) == node
