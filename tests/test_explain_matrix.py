"""Explain-vs-query agreement and route attribution across the stack."""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.core.condensed import CondensedIndex
from repro.core.registry import all_plain_indexes
from repro.gdbms import GraphStore
from repro.gdbms.planner import IndexPlanner
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import cyclic_communities, random_dag
from repro.graphs.topo import is_dag
from repro.obs.metrics import MetricsRegistry, global_registry
from repro.obs.tracer import TRACER, disable_tracing, enable_tracing
from repro.service.engine import ReachabilityService
from repro.service.server import serve
from repro.traversal.online import bfs_reachable

PLAIN = all_plain_indexes()
FAST = sorted(set(PLAIN) - {"2-Hop", "Dual labeling", "Path-hop"})

SHARD_ROUTES = {"intra_shard", "cross_shard", "boundary_cache"}
ROUTES = {
    "trivial",
    "label_probe",
    "certain",
    "guided_traversal",
    "same_scc",
} | SHARD_ROUTES


@pytest.fixture(autouse=True)
def _tracer_off():
    disable_tracing()
    TRACER.clear()
    yield
    disable_tracing()
    TRACER.clear()


def _build(name: str, graph: DiGraph):
    cls = PLAIN[name]
    if cls.metadata.input_kind == "DAG" and not is_dag(graph):
        return CondensedIndex.build(graph, inner=cls)
    return cls.build(graph)


@pytest.mark.parametrize("name", FAST)
def test_explain_agrees_with_query(name):
    """Every family: explain() answer, route and query() agree everywhere."""
    for graph in (
        random_dag(30, 70, seed=301),
        cyclic_communities(3, 4, 8, seed=302),
    ):
        index = _build(name, graph)
        n = graph.num_vertices
        for s in range(0, n, 3):
            for t in range(0, n, 2):
                explanation = index.explain(s, t)
                assert explanation.answer == index.query(s, t) == bfs_reachable(
                    graph, s, t
                ), (name, s, t)
                assert explanation.route in ROUTES, (name, explanation.route)
                assert explanation.index
                assert explanation.details
                json.dumps(explanation.as_dict())


@pytest.mark.parametrize("name", FAST)
def test_explain_route_matches_metadata(name):
    """The reported route is consistent with the family's taxonomy row."""
    graph = random_dag(30, 70, seed=303)
    index = _build(name, graph)
    complete = PLAIN[name].metadata.complete
    seen = set()
    n = graph.num_vertices
    for s in range(0, n, 3):
        for t in range(0, n, 2):
            seen.add(index.explain(s, t).route)
    assert "trivial" in seen  # the s == t diagonal
    if name == "Sharded":
        # The partitioned composition attributes its own route set.
        assert seen - {"trivial"} <= SHARD_ROUTES
        assert "intra_shard" in seen
    elif complete:
        assert "label_probe" in seen
        assert not seen & {"certain", "guided_traversal"}
    else:
        assert "certain" in seen
        assert "label_probe" not in seen


def test_condensed_same_scc_route(cyclic_graph):
    index = CondensedIndex.build(cyclic_graph, inner=PLAIN["Tree cover"])
    explanation = index.explain(0, 2)  # both inside the {0,1,2} SCC
    assert explanation.answer is True
    assert explanation.route == "same_scc"
    assert index.query(0, 2) is True


def test_trivial_route():
    index = PLAIN["PLL"].build(DiGraph(3, [(0, 1)]))
    explanation = index.explain(2, 2)
    assert explanation.answer is True
    assert explanation.route == "trivial"
    assert explanation.probe is None


def _route_counters() -> dict[str, int]:
    nested = global_registry().as_dict().get("index", {}).get("route", {})
    return {route: count for route, count in nested.items()}


def test_route_counters_gated_on_tracing(small_dag):
    index = PLAIN["PLL"].build(small_dag)
    before = _route_counters()
    index.query(0, 5)
    assert _route_counters() == before  # disabled tracer: query() pays nothing
    enable_tracing()
    index.query(0, 5)
    index.query(1, 1)
    after = _route_counters()
    assert after.get("label_probe", 0) == before.get("label_probe", 0) + 1
    assert after.get("trivial", 0) == before.get("trivial", 0) + 1
    spans = [s for s in TRACER.finished() if s.name == "index.query"]
    assert [s.attributes["route"] for s in spans] == ["label_probe", "trivial"]


def test_batch_routes_attributed(small_dag):
    enable_tracing()
    index = PLAIN["GRAIL"].build(small_dag)  # partial: sweeps its MAYBEs
    before = _route_counters()
    pairs = [(s, t) for s in range(8) for t in range(8) if s != t]
    answers = index.query_batch(pairs)
    assert answers == [bfs_reachable(small_dag, s, t) for s, t in pairs]
    after = _route_counters()
    resolved = sum(after.values()) - sum(before.values())
    assert resolved == len(pairs)
    sweeps = [s for s in TRACER.finished() if s.name == "index.kernel_sweep"]
    assert sweeps  # GRAIL leaves MAYBEs for the shared bit-parallel sweep
    swept = sum(s.attributes["pairs"] for s in sweeps)
    assert after.get("kernel_sweep", 0) == before.get("kernel_sweep", 0) + swept


def test_explain_works_without_tracing(small_dag):
    """explain() is an explicit request — no tracer needed, no counters."""
    index = PLAIN["GRAIL"].build(small_dag)
    before = _route_counters()
    explanation = index.explain(0, 6)
    assert explanation.answer is True
    assert _route_counters() == before


# -- planner ---------------------------------------------------------------
def test_planner_routes_into_registry():
    store = GraphStore()
    for name in ("a", "b", "c"):
        store.add_node(name)
    store.add_edge("a", "x", "b")
    store.add_edge("b", "y", "c")
    registry = MetricsRegistry()
    planner = IndexPlanner(store, metrics=registry)
    a, c = store.node_id("a"), store.node_id("c")
    assert planner.reaches(a, c)
    assert planner.constrained_reaches(a, c, "(x|y)*")
    assert planner.constrained_reaches(a, c, "(x·y)*")
    snapshot = registry.as_dict()["gdbms"]
    assert snapshot["route"]["plain_index"] == 1
    assert snapshot["route"]["alternation_index"] == 1
    assert snapshot["route"]["concatenation_index"] == 1
    assert snapshot["rebuilds"]["DLCR"] == 1
    assert snapshot["rebuilds"]["RLC"] == 1
    stats = planner.statistics
    assert stats.plain_index == 1  # the registry mirrors PlannerStatistics
    assert stats.rebuilds == {"DLCR": 1, "RLC": 1}


# -- service surfacing -----------------------------------------------------
@pytest.fixture
def http_service():
    graph = DiGraph(6, [(0, 1), (1, 2), (2, 3), (4, 5)])
    service = ReachabilityService(graph, index="PLL")
    server = serve(service, port=0)
    server.start_background()
    port = server.server_address[1]
    yield f"http://127.0.0.1:{port}"
    server.shutdown()
    server.server_close()


def _get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=5) as response:
        return json.loads(response.read())


def test_http_explain(http_service):
    payload = _get(f"{http_service}/explain?source=0&target=3")
    assert payload["answer"] is True
    assert payload["route"] in ROUTES
    assert payload["index"] == "PLL"
    payload = _get(f"{http_service}/explain?source=3&target=0")
    assert payload["answer"] is False


def test_http_explain_reports_cache_hits(http_service):
    _get(f"{http_service}/reach?source=0&target=3")  # populate the cache
    payload = _get(f"{http_service}/explain?source=0&target=3")
    assert payload["route"] == "cache"
    assert payload["answer"] is True


def test_http_debug_trace(http_service):
    enable_tracing()
    _get(f"{http_service}/reach?source=0&target=2")
    payload = _get(f"{http_service}/debug/trace")
    assert payload["tracer"]["enabled"] is True
    names = [span["name"] for span in payload["spans"]]
    assert "service.query" in names
    query_span = next(
        s for s in payload["spans"] if s["name"] == "service.query"
    )
    assert query_span["attributes"]["route"]
    limited = _get(f"{http_service}/debug/trace?limit=1")
    assert len(limited["spans"]) == 1


def test_http_metrics_exposes_route_counters(http_service):
    enable_tracing()
    _get(f"{http_service}/reach?source=0&target=3")
    _get(f"{http_service}/reach?source=1&target=1")
    with urllib.request.urlopen(f"{http_service}/metrics", timeout=5) as response:
        text = response.read().decode()
    route_lines = [l for l in text.splitlines() if l.startswith("index_route_")]
    assert route_lines  # the service /metrics merges the global registry
    payload = _get(f"{http_service}/metrics?format=json")
    assert "index" in payload
