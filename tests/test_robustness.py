"""Robustness: deep graphs (no recursion limits), parallel edges, extremes."""

from __future__ import annotations

import pytest

from repro.core.base import TriState
from repro.core.registry import all_labeled_indexes, plain_index
from repro.graphs.digraph import DiGraph
from repro.graphs.labeled import LabeledDiGraph
from repro.traversal.rpq import rpq_reachable


class TestDeepGraphs:
    """Every traversal in the library is iterative; 20k-deep chains must work."""

    N = 20_000

    def _chain(self) -> DiGraph:
        return DiGraph(self.N, ((i, i + 1) for i in range(self.N - 1)))

    @pytest.mark.parametrize("name", ["Tree cover", "GRAIL", "BFL", "Feline", "Preach"])
    def test_deep_chain_builds_and_answers(self, name):
        graph = self._chain()
        index = plain_index(name).build(graph)
        assert index.query(0, self.N - 1)
        assert not index.query(self.N - 1, 0)

    def test_deep_chain_pll(self):
        graph = self._chain()
        index = plain_index("PLL").build(graph)
        assert index.query(0, self.N - 1)
        assert not index.query(self.N - 1, 0)

    def test_deep_cycle_condensation(self):
        n = 20_000
        edges = [(i, (i + 1) % n) for i in range(n)]
        graph = DiGraph(n, edges)
        index = plain_index("TC").build(graph)
        assert index.query(0, n // 2)
        assert index.query(n // 2, 0)


class TestParallelEdges:
    """Labeled graphs allow parallel edges with distinct labels (RDF-style)."""

    def _graph(self) -> LabeledDiGraph:
        graph = LabeledDiGraph(4)
        graph.add_edge(0, 1, "a")
        graph.add_edge(0, 1, "b")  # parallel edge, different label
        graph.add_edge(1, 2, "a")
        graph.add_edge(2, 3, "b")
        graph.add_edge(1, 3, "b")
        return graph

    @pytest.mark.parametrize("name", sorted(all_labeled_indexes()))
    def test_labeled_indexes_respect_parallel_edges(self, name):
        graph = self._graph()
        cls = all_labeled_indexes()[name]
        index = cls.build(graph)
        if cls.metadata.constraint == "Alternation":
            constraints = ["(a)*", "(b)*", "(a|b)*", "(a)+", "(b)+"]
        else:
            constraints = ["(a)*", "(b)*", "(a.b)*", "(b.a)+"]
        for constraint in constraints:
            for s in graph.vertices():
                for t in graph.vertices():
                    expected = rpq_reachable(graph, s, t, constraint)
                    assert index.query(s, t, constraint) == expected, (
                        name,
                        constraint,
                        s,
                        t,
                    )

    def test_only_a_path_uses_the_a_edge(self):
        graph = self._graph()
        assert rpq_reachable(graph, 0, 2, "(a)*")
        assert not rpq_reachable(graph, 0, 3, "(a)*")
        assert rpq_reachable(graph, 0, 3, "(b)*")


class TestGrailExceptions:
    def test_exception_lists_make_lookup_exact(self):
        from repro.graphs.generators import random_dag
        from repro.traversal.online import bfs_reachable

        graph = random_dag(50, 120, seed=210)
        index = plain_index("GRAIL").build(graph, k=2, exceptions=True)
        assert index.has_exceptions
        for s in range(graph.num_vertices):
            for t in range(graph.num_vertices):
                probe = index.lookup(s, t)
                assert probe is not TriState.MAYBE
                assert (probe is TriState.YES) == bfs_reachable(graph, s, t)

    def test_exceptions_grow_the_index(self):
        from repro.graphs.generators import random_dag

        graph = random_dag(50, 120, seed=211)
        plain = plain_index("GRAIL").build(graph, k=1, seed=3)
        exact = plain_index("GRAIL").build(graph, k=1, seed=3, exceptions=True)
        assert exact.size_in_entries() >= plain.size_in_entries()

    def test_without_exceptions_flag_stays_partial(self):
        from repro.graphs.generators import random_dag

        graph = random_dag(30, 70, seed=212)
        index = plain_index("GRAIL").build(graph, k=1)
        assert not index.has_exceptions
        maybes = sum(
            1
            for s in range(30)
            for t in range(30)
            if index.lookup(s, t) is TriState.MAYBE
        )
        assert maybes > 0


class TestSingleVertex:
    @pytest.mark.parametrize("name", ["PLL", "GRAIL", "BFL", "TC", "Path-tree"])
    def test_single_vertex_graph(self, name):
        graph = DiGraph(1)
        index = plain_index(name).build(graph)
        assert index.query(0, 0)
