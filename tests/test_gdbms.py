"""Tests for the GDBMS integration layer (§5 vision)."""

from __future__ import annotations

import random

import pytest

from repro.errors import GraphError
from repro.gdbms import GraphStore, ReachabilityDatabase
from repro.traversal.rpq import rpq_reachable


class TestGraphStore:
    def test_nodes_and_properties(self):
        store = GraphStore()
        store.add_node("alice", role="analyst")
        store.add_node("bob")
        assert store.num_nodes == 2
        assert store.properties("alice")["role"] == "analyst"
        assert store.has_node("bob")
        assert not store.has_node("carol")
        assert store.node_name(store.node_id("alice")) == "alice"

    def test_duplicate_node_rejected(self):
        store = GraphStore()
        store.add_node("x")
        with pytest.raises(GraphError):
            store.add_node("x")

    def test_unknown_node_rejected(self):
        store = GraphStore()
        with pytest.raises(GraphError):
            store.node_id("ghost")

    def test_edges_and_log(self):
        store = GraphStore()
        store.add_node("a")
        store.add_node("b")
        store.add_edge("a", "knows", "b")
        assert store.has_edge("a", "knows", "b")
        assert list(store.edges()) == [("a", "knows", "b")]
        log = store.drain_log()
        assert len(log) == 1
        assert log[0].kind == "insert"
        assert store.drain_log() == []
        store.remove_edge("a", "knows", "b")
        assert store.drain_log()[0].kind == "delete"

    def test_version_bumps_on_mutation(self):
        store = GraphStore()
        v0 = store.version
        store.add_node("a")
        assert store.version > v0


class TestReachabilityDatabase:
    @pytest.fixture
    def db(self):
        db = ReachabilityDatabase()
        for name in "abcdef":
            db.add_node(name)
        db.add_edge("a", "knows", "b")
        db.add_edge("b", "worksWith", "c")
        db.add_edge("c", "knows", "d")
        db.add_edge("d", "knows", "e")
        return db

    def test_plain_reachability(self, db):
        assert db.reaches("a", "e")
        assert not db.reaches("e", "a")
        assert not db.reaches("a", "f")

    def test_constrained_reachability(self, db):
        assert not db.reaches_via("a", "(knows)*", "d")  # worksWith in the way
        assert db.reaches_via("c", "(knows)*", "e")
        assert db.reaches_via("a", "(knows | worksWith)*", "e")

    def test_concatenation_reachability(self, db):
        db.add_edge("e", "worksWith", "f")
        assert db.reaches_via("c", "(knows . knows)*", "e")
        assert not db.reaches_via("c", "(knows . worksWith)*", "e")

    def test_general_rpq_falls_back(self, db):
        # not alternation, not concatenation: traversal path
        assert db.reaches_via("a", "knows . (worksWith | knows)*", "e")
        assert db.explain().traversal >= 1

    def test_reachable_from(self, db):
        assert db.reachable_from("c") == {"d", "e"}
        assert db.reachable_from("c", "(knows)*") == {"d", "e"}

    def test_updates_keep_queries_exact(self, db):
        assert not db.reaches("a", "f")
        db.add_edge("e", "knows", "f")
        assert db.reaches("a", "f")
        db.remove_edge("b", "worksWith", "c")
        assert not db.reaches("a", "f")

    def test_nodes_added_after_index_build(self, db):
        db.reaches("a", "b")  # force the index build
        db.add_node("late")
        db.add_edge("e", "knows", "late")
        assert db.reaches("a", "late")
        assert db.reaches_via("c", "(knows)*", "late")

    def test_explain_counters(self, db):
        db.reaches("a", "b")
        db.reaches_via("a", "(knows)*", "b")
        db.reaches_via("a", "(knows . knows)*", "c")
        stats = db.explain()
        assert stats.plain_index == 1
        assert stats.alternation_index == 1
        assert stats.concatenation_index == 1
        assert stats.total() == 3
        assert stats.rebuilds.get("DLCR", 0) == 1

    def test_rlc_rebuild_on_demand(self, db):
        db.reaches_via("a", "(knows . knows)*", "c")
        first = db.explain().rebuilds.get("RLC", 0)
        db.reaches_via("a", "(knows . knows)*", "d")  # no update: no rebuild
        assert db.explain().rebuilds.get("RLC", 0) == first
        db.add_edge("f", "knows", "a")
        db.reaches_via("a", "(knows . knows)*", "c")  # update: rebuild
        assert db.explain().rebuilds.get("RLC", 0) == first + 1


class TestRandomisedSession:
    def test_long_mixed_session_stays_exact(self):
        """Random DDL + queries; every answer checked against traversal."""
        rng = random.Random(123)
        db = ReachabilityDatabase()
        labels = ["x", "y", "z"]
        names = [f"n{i}" for i in range(12)]
        for name in names:
            db.add_node(name)
        for _step in range(120):
            action = rng.random()
            if action < 0.35:
                s, t = rng.choice(names), rng.choice(names)
                label = rng.choice(labels)
                if not db.store.has_edge(s, label, t) and s != t:
                    db.add_edge(s, label, t)
            elif action < 0.45:
                edges = list(db.store.edges())
                if edges:
                    s, label, t = edges[rng.randrange(len(edges))]
                    db.remove_edge(s, label, t)
            elif action < 0.75:
                s, t = rng.choice(names), rng.choice(names)
                constraint = rng.choice(
                    ["(x)*", "(x | y)*", "(x | y | z)*", "(y)+", "(x . y)*"]
                )
                expected = rpq_reachable(
                    db.store.graph,
                    db.store.node_id(s),
                    db.store.node_id(t),
                    constraint,
                )
                assert db.reaches_via(s, constraint, t) == expected, (
                    s,
                    t,
                    constraint,
                )
            else:
                s, t = rng.choice(names), rng.choice(names)
                expected = rpq_reachable(
                    db.store.graph,
                    db.store.node_id(s),
                    db.store.node_id(t),
                    "(x | y | z)*",
                ) or s == t
                assert db.reaches(s, t) == expected


class TestWitness:
    def test_plain_witness(self):
        db = ReachabilityDatabase()
        for n in "abc":
            db.add_node(n)
        db.add_edge("a", "x", "b")
        db.add_edge("b", "y", "c")
        assert db.witness("a", "c") == [("a", ""), ("b", ""), ("c", "")]
        assert db.witness("c", "a") is None

    def test_constrained_witness(self):
        db = ReachabilityDatabase()
        for n in "abc":
            db.add_node(n)
        db.add_edge("a", "x", "b")
        db.add_edge("b", "y", "c")
        db.add_edge("a", "y", "c")
        steps = db.witness("a", "c", "(x | y)*")
        assert steps is not None
        assert steps[0][0] == "a" and steps[-1][0] == "c"
        assert db.witness("a", "c", "(x)*") is None
