"""Property-based fuzzing of the unified index contract.

Hypothesis drives random graphs through every fast index and checks the
full exactness contract against BFS — the widest net in the suite.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.condensed import CondensedIndex
from repro.core.registry import all_plain_indexes
from repro.graphs.digraph import DiGraph
from repro.traversal.online import bfs_reachable

PLAIN = all_plain_indexes()
# cheap enough for fuzzing; the expensive ones have dedicated suites
FUZZ_NAMES = sorted(
    set(PLAIN)
    - {"2-Hop", "Dual labeling", "Path-hop", "3-Hop", "HL", "Ralf et al."}
)


def _random_graph(data, max_vertices=14) -> DiGraph:
    n = data.draw(st.integers(2, max_vertices))
    edges = data.draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=3 * n,
        )
    )
    graph = DiGraph(n)
    for u, v in edges:
        if u != v:
            graph.add_edge_if_absent(u, v)
    return graph


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_every_index_is_exact_on_random_graphs(data):
    graph = _random_graph(data)
    name = data.draw(st.sampled_from(FUZZ_NAMES))
    cls = PLAIN[name]
    from repro.graphs.topo import is_dag

    if cls.metadata.input_kind == "DAG" and not is_dag(graph):
        index = CondensedIndex.build(graph, inner=cls)
    else:
        index = cls.build(graph)
    for s in range(graph.num_vertices):
        for t in range(graph.num_vertices):
            assert index.query(s, t) == bfs_reachable(graph, s, t), (name, s, t)


@settings(max_examples=15, deadline=None)
@given(st.data())
def test_labeled_indexes_exact_on_random_graphs(data):
    from repro.core.registry import all_labeled_indexes
    from repro.graphs.labeled import LabeledDiGraph
    from repro.traversal.rpq import rpq_reachable

    n = data.draw(st.integers(2, 10))
    labels = ["a", "b"]
    edges = data.draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.sampled_from(labels),
            ),
            max_size=2 * n,
        )
    )
    graph = LabeledDiGraph(n)
    for label in labels:
        graph.intern_label(label)
    for u, v, label in edges:
        if u != v and not graph.has_edge(u, v, label):
            graph.add_edge(u, v, label)
    name = data.draw(
        st.sampled_from(sorted(all_labeled_indexes()))
    )
    cls = all_labeled_indexes()[name]
    index = cls.build(graph)
    constraint = (
        data.draw(st.sampled_from(["(a)*", "(b)+", "(a|b)*", "(a|b)+"]))
        if cls.metadata.constraint == "Alternation"
        else data.draw(st.sampled_from(["(a)*", "(b)+", "(a.b)*", "(b.a)+"]))
    )
    for s in range(n):
        for t in range(n):
            expected = rpq_reachable(graph, s, t, constraint)
            assert index.query(s, t, constraint) == expected, (name, constraint, s, t)
