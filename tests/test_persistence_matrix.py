"""Persistence round-trips over *every* registered index family.

``tests/test_persistence.py`` spot-checks a handful of families; this
matrix proves the save/load container works for the whole registry —
build, save, load, then verify the loaded index answers exactly like the
online oracle on every vertex pair of a small graph.
"""

from __future__ import annotations

import pytest

from repro.core.registry import all_labeled_indexes, all_plain_indexes
from repro.graphs.generators import random_dag, random_labeled_digraph
from repro.persistence import load_index, save_index
from repro.traversal.online import bfs_reachable
from repro.traversal.rpq import rpq_reachable

PLAIN = all_plain_indexes()
LABELED = all_labeled_indexes()


@pytest.fixture(scope="module")
def dag():
    # A DAG satisfies every plain family's input assumption (Table 1).
    return random_dag(12, 26, seed=401)


@pytest.fixture(scope="module")
def labeled_graph():
    return random_labeled_digraph(10, 24, ["a", "b"], seed=402)


@pytest.mark.parametrize("name", sorted(PLAIN))
def test_every_plain_family_round_trips(tmp_path, dag, name):
    index = PLAIN[name].build(dag)
    path = tmp_path / "index.repro"
    save_index(index, path)
    loaded = load_index(path)
    assert type(loaded) is type(index)
    for s in range(dag.num_vertices):
        for t in range(dag.num_vertices):
            assert loaded.query(s, t) == bfs_reachable(dag, s, t), (name, s, t)


@pytest.mark.parametrize("name", sorted(LABELED))
def test_every_labeled_family_round_trips(tmp_path, labeled_graph, name):
    cls = LABELED[name]
    index = cls.build(labeled_graph)
    path = tmp_path / "index.repro"
    save_index(index, path)
    loaded = load_index(path)
    assert type(loaded) is type(index)
    # Concatenation-only families (RLC) cannot take alternation queries.
    constraint = "(a . b)*" if cls.metadata.constraint == "Concatenation" else "(a | b)*"
    for s in range(labeled_graph.num_vertices):
        for t in range(labeled_graph.num_vertices):
            expected = rpq_reachable(labeled_graph, s, t, constraint)
            assert loaded.query(s, t, constraint) == expected, (name, s, t)
