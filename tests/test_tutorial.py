"""docs/TUTORIAL.md stays executable: every code block runs, in order.

The tutorial's blocks share one namespace (like a REPL session), so the
document can build on earlier definitions exactly as a reader would.
"""

from __future__ import annotations

import re
from pathlib import Path

TUTORIAL = Path(__file__).resolve().parent.parent / "docs" / "TUTORIAL.md"


def _code_blocks() -> list[str]:
    text = TUTORIAL.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_tutorial_has_blocks():
    assert len(_code_blocks()) >= 10


def test_tutorial_blocks_execute_in_order():
    namespace: dict[str, object] = {}
    for i, block in enumerate(_code_blocks()):
        try:
            exec(compile(block, f"<tutorial block {i}>", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            raise AssertionError(
                f"tutorial block {i} failed: {exc}\n---\n{block}"
            ) from exc
