"""Labeled-graph-family × LCR-index matrix.

Structural variety for the §4 indexes: acyclic vs cyclic, label skew,
few vs many labels, parallel-edge-rich graphs, and the domain datasets —
each checked exhaustively against constrained-BFS ground truth.
"""

from __future__ import annotations

import pytest

from repro.core.registry import all_labeled_indexes
from repro.graphs.generators import random_labeled_digraph
from repro.graphs.labeled import LabeledDiGraph
from repro.traversal.rpq import constrained_descendants

LABELED = all_labeled_indexes()
ALTERNATION = sorted(
    n for n, c in LABELED.items() if c.metadata.constraint == "Alternation"
)


def _parallel_rich() -> LabeledDiGraph:
    graph = random_labeled_digraph(14, 30, ["a", "b"], seed=501)
    # add a parallel twin (other label) to every third edge
    for i, (u, v, label) in enumerate(list(graph.edges())):
        if i % 3 == 0:
            other = "b" if label == "a" else "a"
            if not graph.has_edge(u, v, other):
                graph.add_edge(u, v, other)
    return graph


FAMILIES = {
    "cyclic": lambda: random_labeled_digraph(14, 36, ["a", "b", "c"], seed=502),
    "acyclic": lambda: random_labeled_digraph(
        14, 30, ["a", "b", "c"], seed=503, acyclic=True
    ),
    "skewed": lambda: random_labeled_digraph(
        14, 36, ["a", "b", "c"], seed=504, skew=2.0
    ),
    "many_labels": lambda: random_labeled_digraph(
        12, 34, ["a", "b", "c", "d", "e"], seed=505
    ),
    "single_label": lambda: random_labeled_digraph(14, 30, ["a"], seed=506),
    "parallel_rich": _parallel_rich,
}


def _constraints(graph: LabeledDiGraph) -> list[str]:
    labels = [str(label) for label in graph.labels()]
    constraints = [f"({labels[0]})*", f"({labels[0]})+"]
    if len(labels) >= 2:
        constraints.append("(" + "|".join(labels[:2]) + ")*")
    constraints.append("(" + "|".join(labels) + ")*")
    return constraints


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("name", ALTERNATION)
def test_labeled_family_matrix(name, family):
    graph = FAMILIES[family]()
    index = LABELED[name].build(graph)
    for constraint in _constraints(graph):
        for s in graph.vertices():
            reach = constrained_descendants(graph, s, constraint)
            for t in graph.vertices():
                expected = t in reach or (s == t and constraint.endswith(")*"))
                assert index.query(s, t, constraint) == expected, (
                    name,
                    family,
                    constraint,
                    s,
                    t,
                )


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_rlc_family_matrix(family):
    graph = FAMILIES[family]()
    index = LABELED["RLC"].build(graph, max_period=2)
    labels = [str(label) for label in graph.labels()]
    constraints = [f"({labels[0]})*", f"({labels[0]})+"]
    if len(labels) >= 2:
        constraints.append(f"({labels[0]}.{labels[1]})*")
    for constraint in constraints:
        for s in graph.vertices():
            reach = constrained_descendants(graph, s, constraint)
            for t in graph.vertices():
                expected = t in reach or (s == t and constraint.endswith(")*"))
                assert index.query(s, t, constraint) == expected, (
                    family,
                    constraint,
                    s,
                    t,
                )
