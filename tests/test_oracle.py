"""Tests for the oracle facades (the §5 GDBMS-integration surface)."""

from __future__ import annotations

import pytest

from repro.core.oracle import PathReachabilityOracle, PlainReachabilityOracle
from repro.graphs.generators import (
    cyclic_communities,
    random_dag,
    random_labeled_digraph,
)
from repro.traversal.online import bfs_reachable
from repro.traversal.rpq import rpq_reachable


class TestPlainOracle:
    def test_default_index_on_dag(self):
        graph = random_dag(30, 70, seed=51)
        oracle = PlainReachabilityOracle(graph)
        for s in range(0, 30, 3):
            for t in range(0, 30, 3):
                assert oracle.reachable(s, t) == bfs_reachable(graph, s, t)

    def test_dag_index_auto_wrapped_on_cyclic_input(self):
        graph = cyclic_communities(4, 4, 8, seed=52)
        oracle = PlainReachabilityOracle(graph, index_name="GRAIL")
        assert oracle.index.metadata.name == "GRAIL+SCC"
        for s in range(graph.num_vertices):
            for t in range(graph.num_vertices):
                assert oracle.reachable(s, t) == bfs_reachable(graph, s, t)

    def test_build_params_forwarded(self):
        graph = random_dag(20, 40, seed=53)
        oracle = PlainReachabilityOracle(graph, index_name="GRAIL", k=5)
        assert oracle.index.k == 5
        assert oracle.size_in_entries() == 5 * graph.num_vertices


class TestPathOracle:
    @pytest.fixture
    def oracle_and_graph(self):
        graph = random_labeled_digraph(14, 35, ["a", "b", "c"], seed=54)
        return PathReachabilityOracle(graph), graph

    def test_alternation_dispatch(self, oracle_and_graph):
        oracle, graph = oracle_and_graph
        constraint = "(a | b)*"
        for s in range(graph.num_vertices):
            for t in range(graph.num_vertices):
                expected = rpq_reachable(graph, s, t, constraint)
                assert oracle.reachable(s, t, constraint) == expected

    def test_concatenation_dispatch(self, oracle_and_graph):
        oracle, graph = oracle_and_graph
        constraint = "(a . b)*"
        for s in range(graph.num_vertices):
            for t in range(graph.num_vertices):
                expected = rpq_reachable(graph, s, t, constraint)
                assert oracle.reachable(s, t, constraint) == expected

    def test_general_rpq_falls_back_to_traversal(self, oracle_and_graph):
        oracle, graph = oracle_and_graph
        # neither pure alternation nor pure concatenation
        constraint = "a . (b | c)*"
        for s in range(0, graph.num_vertices, 2):
            for t in range(graph.num_vertices):
                expected = rpq_reachable(graph, s, t, constraint)
                assert oracle.reachable(s, t, constraint) == expected

    def test_long_period_falls_back(self, oracle_and_graph):
        oracle, graph = oracle_and_graph
        constraint = "(a.b.a.b.a)*"  # period 5 > default RLC bound
        assert oracle.reachable(0, 0, constraint)  # empty path
        for t in range(graph.num_vertices):
            expected = rpq_reachable(graph, 0, t, constraint)
            assert oracle.reachable(0, t, constraint) == expected

    def test_index_accessors(self, oracle_and_graph):
        oracle, _graph = oracle_and_graph
        assert oracle.alternation_index.metadata.name == "P2H+"
        assert oracle.concatenation_index.metadata.name == "RLC"
