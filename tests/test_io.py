"""Tests for edge-list input/output."""

from __future__ import annotations

import io

import pytest

from repro.errors import GraphError
from repro.graphs.generators import random_dag, random_labeled_digraph
from repro.graphs.io import (
    read_edge_list,
    read_labeled_edge_list,
    write_edge_list,
    write_labeled_edge_list,
)


class TestPlainIO:
    def test_round_trip_through_file(self, tmp_path):
        graph = random_dag(20, 50, seed=1)
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path)
        loaded, ids = read_edge_list(path)
        assert loaded.num_edges == graph.num_edges
        # dense ids written as tokens map back to themselves structurally
        for u, v in graph.edges():
            assert loaded.has_edge(ids[str(u)], ids[str(v)])

    def test_comments_and_blank_lines_skipped(self):
        text = io.StringIO("# header\n\na b\nb c\n")
        graph, ids = read_edge_list(text)
        assert graph.num_vertices == 3
        assert graph.has_edge(ids["a"], ids["b"])

    def test_sparse_ids_remapped_densely(self):
        graph, ids = read_edge_list(io.StringIO("100 200\n200 999\n"))
        assert graph.num_vertices == 3
        assert sorted(ids.values()) == [0, 1, 2]

    def test_duplicate_edges_collapsed(self):
        graph, _ids = read_edge_list(io.StringIO("a b\na b\n"))
        assert graph.num_edges == 1

    def test_malformed_line_raises(self):
        with pytest.raises(GraphError, match="line 1"):
            read_edge_list(io.StringIO("only-one-token\n"))

    def test_write_to_stream(self):
        graph = random_dag(5, 6, seed=2)
        sink = io.StringIO()
        write_edge_list(graph, sink)
        assert len(sink.getvalue().splitlines()) == 6


class TestLabeledIO:
    def test_round_trip(self, tmp_path):
        graph = random_labeled_digraph(15, 40, ["f", "g"], seed=3)
        path = tmp_path / "labeled.txt"
        write_labeled_edge_list(graph, path)
        loaded, ids = read_labeled_edge_list(path)
        assert loaded.num_edges == graph.num_edges
        assert set(loaded.labels()) == set(graph.labels())

    def test_malformed_labeled_line_raises(self):
        with pytest.raises(GraphError, match="line 2"):
            read_labeled_edge_list(io.StringIO("a b f\na b\n"))

    def test_duplicate_labeled_edges_collapsed(self):
        graph, _ids = read_labeled_edge_list(io.StringIO("a b f\na b f\na b g\n"))
        assert graph.num_edges == 2

    def test_write_to_stream(self):
        graph = random_labeled_digraph(6, 9, ["x"], seed=4)
        sink = io.StringIO()
        write_labeled_edge_list(graph, sink)
        lines = sink.getvalue().splitlines()
        assert len(lines) == 9
        assert all(len(line.split()) == 3 for line in lines)
