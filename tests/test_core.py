"""Tests for the core abstractions: TriState, metadata, guided traversal."""

from __future__ import annotations

import pytest

from repro.core.base import IndexMetadata, TriState, guided_query
from repro.core.condensed import CondensedIndex
from repro.core.registry import plain_index
from repro.errors import QueryError
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import cyclic_communities, random_dag
from repro.traversal.online import bfs_reachable


class TestIndexMetadata:
    def test_index_type_property(self):
        complete = IndexMetadata("X", "2-Hop", True, "DAG", "no")
        partial = IndexMetadata("Y", "2-Hop", False, "DAG", "no")
        assert complete.index_type == "Complete"
        assert partial.index_type == "Partial"

    def test_frozen(self):
        meta = IndexMetadata("X", "2-Hop", True, "DAG", "no")
        with pytest.raises(AttributeError):
            meta.name = "Z"


class _OnlyNoIndex:
    """A stub partial index that can only certify specific negatives."""

    def __init__(self, no_pairs):
        self._no_pairs = no_pairs

    def lookup(self, s, t):
        if (s, t) in self._no_pairs:
            return TriState.NO
        return TriState.MAYBE


class _OnlyYesIndex:
    """A stub partial index that can only certify specific positives."""

    def __init__(self, yes_pairs):
        self._yes_pairs = yes_pairs

    def lookup(self, s, t):
        if (s, t) in self._yes_pairs:
            return TriState.YES
        return TriState.MAYBE


class TestGuidedQuery:
    def test_pure_traversal_when_index_is_useless(self, small_dag):
        index = _OnlyNoIndex(set())
        for s in small_dag.vertices():
            for t in small_dag.vertices():
                assert guided_query(small_dag, index, s, t) == bfs_reachable(
                    small_dag, s, t
                )

    def test_no_certificate_prunes_but_stays_exact(self, small_dag):
        # claim NO for everything unreachable from 2 towards 5
        no_pairs = {
            (v, 5)
            for v in small_dag.vertices()
            if not bfs_reachable(small_dag, v, 5)
        }
        index = _OnlyNoIndex(no_pairs)
        for s in small_dag.vertices():
            assert guided_query(small_dag, index, s, 5) == bfs_reachable(
                small_dag, s, 5
            )

    def test_yes_certificate_short_circuits(self, small_dag):
        index = _OnlyYesIndex({(0, 6)})
        assert guided_query(small_dag, index, 0, 6)

    def test_immediate_no_on_source(self, small_dag):
        index = _OnlyNoIndex({(5, 0)})
        assert not guided_query(small_dag, index, 5, 0)
        # the immediate-NO path still answers s == s correctly
        index_self = _OnlyNoIndex({(3, 3)})
        assert guided_query(small_dag, index_self, 3, 3)


class TestCondensedIndex:
    def test_requires_inner(self):
        with pytest.raises(TypeError):
            CondensedIndex.build(DiGraph(2))

    def test_wraps_and_answers(self):
        graph = cyclic_communities(4, 4, 8, seed=12)
        index = CondensedIndex.build(graph, inner=plain_index("GRAIL"), k=2)
        for s in range(graph.num_vertices):
            for t in range(graph.num_vertices):
                assert index.query(s, t) == bfs_reachable(graph, s, t)

    def test_same_scc_is_yes_lookup(self):
        graph = DiGraph(3, [(0, 1), (1, 0), (1, 2)])
        index = CondensedIndex.build(graph, inner=plain_index("Tree cover"))
        assert index.lookup(0, 1) is TriState.YES
        assert index.lookup(2, 0) is TriState.NO

    def test_metadata_reflects_wrapping(self):
        graph = DiGraph(2, [(0, 1)])
        index = CondensedIndex.build(graph, inner=plain_index("GRAIL"))
        assert index.metadata.input_kind == "General"
        assert index.metadata.name == "GRAIL+SCC"
        assert index.inner.metadata.name == "GRAIL"

    def test_size_includes_scc_map(self):
        graph = random_dag(10, 20, seed=13)
        index = CondensedIndex.build(graph, inner=plain_index("Tree cover"))
        assert index.size_in_entries() >= graph.num_vertices


class TestQueryValidation:
    def test_complete_index_query_bounds(self):
        graph = random_dag(5, 6, seed=14)
        index = plain_index("PLL").build(graph)
        with pytest.raises(QueryError):
            index.query(0, 5)

    def test_labeled_index_query_bounds(self, labeled_graph):
        from repro.core.registry import labeled_index

        index = labeled_index("P2H+").build(labeled_graph)
        with pytest.raises(QueryError):
            index.query(0, 10_000, "(a)*")
