"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.graphs.digraph import DiGraph
from repro.graphs.generators import (
    cyclic_communities,
    random_dag,
    random_labeled_digraph,
)


@pytest.fixture
def small_dag() -> DiGraph:
    """A fixed 8-vertex DAG with a diamond, a chain, and an isolate.

    Layout::

        0 -> 1 -> 3 -> 5
        0 -> 2 -> 3
        2 -> 4 -> 6
        7 (isolated)
    """
    return DiGraph(8, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 5), (2, 4), (4, 6)])


@pytest.fixture
def cyclic_graph() -> DiGraph:
    """A fixed graph with one 3-cycle feeding a 2-cycle plus a tail.

    SCCs: {0,1,2}, {3,4}, {5}.
    """
    return DiGraph(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3), (4, 5)])


@pytest.fixture
def medium_dag() -> DiGraph:
    """A seeded 60-vertex random DAG."""
    return random_dag(60, 150, seed=42)


@pytest.fixture
def medium_cyclic() -> DiGraph:
    """A seeded cyclic graph: ring communities wired forward."""
    return cyclic_communities(6, 5, 12, seed=42)


@pytest.fixture
def labeled_graph():
    """A seeded 20-vertex labeled digraph over three labels."""
    return random_labeled_digraph(20, 50, ["a", "b", "c"], seed=42)
