"""Tests for the benchmark harness and experiment row generators."""

from __future__ import annotations

from repro.bench.experiments import (
    ablation_ferrari_rows,
    ablation_grail_rows,
    ablation_order_rows,
    ablation_reduction_rows,
    approx_tc_rows,
    build_scaling_rows,
    index_size_rows,
    lcr_build_rows,
    lcr_rows,
    query_speed_rows,
    taxonomy_table1_rows,
    taxonomy_table2_rows,
)
from repro.bench.harness import build_index, lookup_statistics, time_workload
from repro.bench.tables import format_count, format_seconds, render_table
from repro.core.registry import plain_index
from repro.graphs.generators import cyclic_communities, random_dag
from repro.workloads.queries import plain_workload


class TestTables:
    def test_render_alignment(self):
        text = render_table(["a", "bb"], [(1, 2), (33, 44)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_format_seconds_ranges(self):
        assert format_seconds(5e-7).endswith("us")
        assert format_seconds(5e-3).endswith("ms")
        assert format_seconds(2.5).endswith("s")

    def test_format_count(self):
        assert format_count(1234567) == "1,234,567"
        assert format_count(12.345) == "12.35"
        assert format_count(12.0) == "12"


class TestHarness:
    def test_build_index_wraps_dag_only_on_cyclic(self):
        graph = cyclic_communities(3, 4, 5, seed=1)
        result = build_index(plain_index("GRAIL"), graph)
        assert result.name == "GRAIL"
        assert result.index.metadata.name == "GRAIL+SCC"
        assert result.build_seconds >= 0

    def test_time_workload_counts_wrong_answers(self):
        graph = random_dag(15, 30, seed=2)
        workload = plain_workload(graph, 30, 0.5, seed=3)
        always_false = time_workload("broken", lambda s, t: False, workload)
        positives = sum(q.reachable for q in workload)
        assert always_false.wrong_answers == positives
        assert always_false.per_query_seconds > 0

    def test_lookup_statistics_sums_to_workload(self):
        graph = random_dag(25, 60, seed=4)
        workload = plain_workload(graph, 60, 0.5, seed=5)
        index = plain_index("GRAIL").build(graph)
        stats = lookup_statistics(index, workload)
        assert sum(stats.values()) == len(workload)
        assert stats["no_wrong"] == 0  # GRAIL has no false negatives
        assert stats["yes_wrong"] == 0  # GRAIL never answers YES falsely


class TestExperimentRows:
    """Each row generator runs at a tiny scale and produces sane rows."""

    def test_taxonomies(self):
        assert len(taxonomy_table1_rows()) == 26
        assert len(taxonomy_table2_rows()) == 8

    def test_query_speed(self):
        rows = query_speed_rows(layers=6, width=10, num_queries=30)
        kinds = {r["kind"] for r in rows}
        assert kinds == {"traversal", "index"}
        assert all(r["wrong"] == 0 for r in rows)

    def test_build_scaling(self):
        rows = build_scaling_rows(sizes=(50, 100), names=("GRAIL", "BFL"))
        assert len(rows) == 4

    def test_index_size(self):
        rows = index_size_rows(num_vertices=60)
        names = {r["name"] for r in rows}
        assert "TC" in names
        assert any("2-Hop" in n for n in names)

    def test_approx_tc(self):
        rows = approx_tc_rows(num_vertices=120, num_queries=60)
        assert all(r["negatives_total"] > 0 for r in rows)

    def test_lcr(self):
        rows = lcr_rows(num_vertices=60, num_queries=20)
        assert all(r["wrong"] == 0 for r in rows)

    def test_lcr_build(self):
        rows = lcr_build_rows(num_vertices=60)
        assert any(r["name"].startswith("plain/") for r in rows)
        assert any(r["name"].startswith("labeled/") for r in rows)

    def test_ablations(self):
        assert len(ablation_grail_rows(num_vertices=120, num_queries=40)) == 5
        assert len(ablation_ferrari_rows(num_vertices=80, num_queries=30)) == 5
        assert len(ablation_order_rows(num_vertices=80)) == 4
        rows = ablation_reduction_rows(num_vertices=80)
        assert all(r["entries_reduced"] <= r["entries_direct"] for r in rows)
