"""Property tests for the SPLS antichain algebra (§4.1 foundations)."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.labeled.spls import (
    add_to_antichain,
    antichain_cross_product,
    antichain_matches,
    is_subset,
    minimize_antichain,
)

masks = st.integers(min_value=0, max_value=2**6 - 1)
mask_lists = st.lists(masks, min_size=0, max_size=12)


class TestSubset:
    def test_examples(self):
        assert is_subset(0b001, 0b011)
        assert is_subset(0, 0b111)
        assert not is_subset(0b100, 0b011)
        assert is_subset(0b101, 0b101)


class TestMinimize:
    @given(mask_lists)
    def test_result_is_an_antichain(self, xs):
        result = minimize_antichain(xs)
        for i, a in enumerate(result):
            for j, b in enumerate(result):
                if i != j:
                    assert not is_subset(a, b)

    @given(mask_lists)
    def test_every_input_is_dominated_by_some_output(self, xs):
        result = minimize_antichain(xs)
        for x in xs:
            assert any(is_subset(kept, x) for kept in result)

    @given(mask_lists)
    def test_outputs_come_from_inputs(self, xs):
        assert set(minimize_antichain(xs)) <= set(xs)

    def test_redundancy_rule_example(self):
        """§4.1: S1 ⊆ S2 makes S2 redundant."""
        assert minimize_antichain([0b01, 0b11]) == [0b01]


class TestAddToAntichain:
    @given(mask_lists, masks)
    def test_incremental_equals_batch(self, xs, extra):
        antichain = minimize_antichain(xs)
        add_to_antichain(antichain, extra)
        assert sorted(antichain) == sorted(minimize_antichain(xs + [extra]))

    def test_dominated_insert_returns_false(self):
        antichain = [0b01]
        assert add_to_antichain(antichain, 0b11) is False
        assert antichain == [0b01]

    def test_dominating_insert_evicts(self):
        antichain = [0b011, 0b110]
        assert add_to_antichain(antichain, 0b010) is True
        assert antichain == [0b010]


class TestCrossProduct:
    def test_transitivity_example(self):
        """§4.1: SPLS(A→M) from SPLS(A→L) × SPLS(L→M)."""
        follows, works_for = 0b01, 0b10
        assert antichain_cross_product([follows], [works_for]) == [
            follows | works_for
        ]

    @given(mask_lists, mask_lists)
    def test_products_dominated_by_pairwise_unions(self, left, right):
        result = antichain_cross_product(left, right)
        unions = {a | b for a in left for b in right}
        assert set(result) <= unions
        for u in unions:
            assert any(is_subset(kept, u) for kept in result)


class TestMatches:
    @given(mask_lists, masks)
    def test_matches_iff_some_mask_fits(self, xs, allowed):
        expected = any(is_subset(x, allowed) for x in xs)
        assert antichain_matches(xs, allowed) == expected
