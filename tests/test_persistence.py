"""Tests for index save/load."""

from __future__ import annotations

import pytest

from repro.core.condensed import CondensedIndex
from repro.core.registry import labeled_index, plain_index
from repro.graphs.generators import (
    cyclic_communities,
    random_dag,
    random_labeled_digraph,
)
from repro.persistence import PersistenceError, load_index, peek_index_info, save_index
from repro.traversal.online import bfs_reachable


@pytest.mark.parametrize("name", ["PLL", "GRAIL", "BFL", "TC", "Path-tree"])
def test_plain_round_trip(tmp_path, name):
    graph = random_dag(25, 60, seed=41)
    index = plain_index(name).build(graph)
    path = tmp_path / "index.repro"
    save_index(index, path)
    loaded = load_index(path)
    assert type(loaded) is type(index)
    for s in range(graph.num_vertices):
        for t in range(graph.num_vertices):
            assert loaded.query(s, t) == bfs_reachable(graph, s, t)


@pytest.mark.parametrize("name", ["P2H+", "RLC", "GTC"])
def test_labeled_round_trip(tmp_path, name):
    graph = random_labeled_digraph(15, 35, ["a", "b"], seed=42)
    index = labeled_index(name).build(graph)
    path = tmp_path / "index.repro"
    save_index(index, path)
    loaded = load_index(path)
    constraint = "(a | b)*" if name != "RLC" else "(a . b)*"
    from repro.traversal.rpq import rpq_reachable

    for s in range(graph.num_vertices):
        for t in range(graph.num_vertices):
            expected = rpq_reachable(graph, s, t, constraint)
            assert loaded.query(s, t, constraint) == expected


def test_condensed_round_trip(tmp_path):
    graph = cyclic_communities(4, 4, 8, seed=43)
    index = CondensedIndex.build(graph, inner=plain_index("GRAIL"))
    path = tmp_path / "wrapped.repro"
    save_index(index, path)
    loaded = load_index(path)
    for s in range(graph.num_vertices):
        for t in range(graph.num_vertices):
            assert loaded.query(s, t) == bfs_reachable(graph, s, t)


def test_peek_reads_class_without_unpickling(tmp_path):
    graph = random_dag(10, 20, seed=44)
    index = plain_index("Feline").build(graph)
    path = tmp_path / "feline.repro"
    save_index(index, path)
    info = peek_index_info(path)
    assert info["class_name"] == "FelineIndex"
    assert info["version"] == 2


def test_dynamic_index_usable_after_load(tmp_path):
    graph = random_dag(20, 40, seed=45)
    index = plain_index("TOL").build(graph)
    path = tmp_path / "tol.repro"
    save_index(index, path)
    loaded = load_index(path)
    g = loaded.graph
    # find a DAG-preserving missing edge and insert through the loaded index
    for u in range(g.num_vertices):
        for v in range(g.num_vertices):
            if u != v and not g.has_edge(u, v) and not bfs_reachable(g, v, u):
                loaded.insert_edge(u, v)
                assert loaded.query(u, v)
                return
    pytest.fail("no insertable edge found")


class TestErrorPaths:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "junk.repro"
        path.write_bytes(b"not an index file at all")
        with pytest.raises(PersistenceError, match="magic"):
            load_index(path)

    def test_bad_version(self, tmp_path):
        path = tmp_path / "future.repro"
        path.write_bytes(b"REPRO-INDEX" + (99).to_bytes(2, "big") + b"\x00\x00")
        with pytest.raises(PersistenceError, match="version"):
            load_index(path)

    def test_save_rejects_non_index(self, tmp_path):
        with pytest.raises(PersistenceError):
            save_index("not an index", tmp_path / "x.repro")

    def test_truncated_file_is_typed_error(self, tmp_path):
        graph = random_dag(10, 20, seed=48)
        index = plain_index("PLL").build(graph)
        path = tmp_path / "trunc.repro"
        save_index(index, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(PersistenceError):
            load_index(path)

    def test_flipped_byte_fails_checksum_with_digests(self, tmp_path):
        graph = random_dag(10, 20, seed=49)
        index = plain_index("PLL").build(graph)
        path = tmp_path / "flip.repro"
        save_index(index, path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF  # damage the pickle payload
        path.write_bytes(bytes(data))
        with pytest.raises(PersistenceError, match="checksum mismatch") as info:
            load_index(path)
        assert "sha256" in str(info.value)
        assert str(path) in str(info.value)

    def test_legacy_v1_file_loads_with_warning(self, tmp_path):
        import pickle

        graph = random_dag(10, 20, seed=50)
        index = plain_index("PLL").build(graph)
        name = type(index).__name__.encode()
        path = tmp_path / "legacy.repro"
        with open(path, "wb") as sink:  # the pre-checksum v1 layout
            sink.write(b"REPRO-INDEX")
            sink.write((1).to_bytes(2, "big"))
            sink.write(len(name).to_bytes(2, "big"))
            sink.write(name)
            sink.write(pickle.dumps(index, protocol=pickle.HIGHEST_PROTOCOL))
        with pytest.warns(UserWarning, match="no checksum"):
            loaded = load_index(path)
        assert type(loaded) is type(index)
        assert loaded.query(0, 0)

    def test_no_temp_file_left_behind(self, tmp_path):
        graph = random_dag(10, 20, seed=51)
        index = plain_index("PLL").build(graph)
        save_index(index, tmp_path / "clean.repro")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["clean.repro"]

    def test_load_rejects_non_index_payload(self, tmp_path):
        import pickle

        path = tmp_path / "list.repro"
        name = b"list"
        with open(path, "wb") as sink:
            sink.write(b"REPRO-INDEX")
            sink.write((1).to_bytes(2, "big"))
            sink.write(len(name).to_bytes(2, "big"))
            sink.write(name)
            sink.write(pickle.dumps([1, 2, 3]))
        with pytest.raises(PersistenceError, match="not an index"):
            load_index(path)


class TestSerializedSize:
    def test_bytes_positive_and_payload_smaller(self):
        from repro.persistence import serialized_size_bytes

        graph = random_dag(40, 100, seed=46)
        index = plain_index("PLL").build(graph)
        total = serialized_size_bytes(index)
        payload = serialized_size_bytes(index, include_graph=False)
        assert total > 0
        assert 0 <= payload < total

    def test_bigger_index_more_bytes(self):
        from repro.persistence import serialized_size_bytes

        graph = random_dag(60, 150, seed=47)
        small = plain_index("GRAIL").build(graph, k=1)
        large = plain_index("GRAIL").build(graph, k=8)
        assert serialized_size_bytes(large) > serialized_size_bytes(small)
