"""Tests for Chen et al.'s recursive decomposition specifics."""

from __future__ import annotations

import itertools

import pytest

from repro.graphs.generators import random_labeled_digraph, random_tree, with_random_labels
from repro.labeled.chen import ChenIndex
from repro.traversal.rpq import constrained_descendants

LABELS = ["a", "b", "c"]


def _check_exact(index, graph, constraints):
    for constraint in constraints:
        for s in graph.vertices():
            reach = constrained_descendants(graph, s, constraint)
            for t in graph.vertices():
                expected = t in reach or s == t
                assert index.query(s, t, constraint) == expected, (constraint, s, t)


def _all_star_constraints():
    result = []
    for r in range(1, len(LABELS) + 1):
        for combo in itertools.combinations(LABELS, r):
            result.append("(" + "|".join(combo) + ")*")
    return result


class TestRecursion:
    def test_pure_tree_is_single_level(self):
        tree = with_random_labels(random_tree(30, seed=401), LABELS, seed=402)
        index = ChenIndex.build(tree)
        assert index.num_levels == 1  # no non-tree edges: nothing to recurse on

    def test_dense_graph_recurses(self):
        graph = random_labeled_digraph(30, 90, LABELS, seed=403)
        index = ChenIndex.build(graph, terminal_threshold=4)
        assert index.num_levels >= 2

    @pytest.mark.parametrize("threshold", [1, 4, 16, 1000])
    def test_exact_for_any_terminal_threshold(self, threshold):
        graph = random_labeled_digraph(20, 55, LABELS, seed=404)
        index = ChenIndex.build(graph, terminal_threshold=threshold)
        _check_exact(index, graph, _all_star_constraints())

    def test_deep_recursion_stays_exact(self):
        # seed chosen to force several levels with a tiny threshold
        graph = random_labeled_digraph(30, 90, LABELS, seed=1)
        index = ChenIndex.build(graph, terminal_threshold=2)
        assert index.num_levels >= 3
        _check_exact(index, graph, _all_star_constraints()[:4])

    def test_plus_cycles(self):
        graph = random_labeled_digraph(15, 45, LABELS, seed=405)
        index = ChenIndex.build(graph)
        for combo in (["a"], ["a", "b"], LABELS):
            constraint = "(" + "|".join(combo) + ")+"
            for v in graph.vertices():
                reach = constrained_descendants(graph, v, constraint)
                assert index.query(v, v, constraint) == (v in reach), (
                    constraint,
                    v,
                )
