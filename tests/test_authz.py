"""repro.authz: tuples, zookies, the store, and the HTTP surface."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.authz import AuthzStore, Zookie, compile_tuples, parse_tuple, parse_tuples
from repro.authz.tuples import RelationTuple
from repro.errors import (
    InvalidTupleError,
    InvalidVertexError,
    InvalidZookieError,
    StaleZookieError,
    UnknownEntityError,
)
from repro.graphs.digraph import DiGraph
from repro.service.engine import ReachabilityService
from repro.service.server import serve
from repro.workloads.authz import authz_tuples, authz_workload
from repro.workloads.updates import TupleOp, tuple_churn_stream

TUPLES = [
    "user:alice#member@group:eng",
    "group:eng#member@group:staff",
    "group:staff#viewer@doc:handbook",
    "group:eng#viewer@doc:design",
    "user:bob#viewer@doc:handbook",
]


# -- tuples ----------------------------------------------------------------
def test_parse_tuple_round_trip():
    t = parse_tuple("user:alice#member@group:eng")
    assert t == RelationTuple("user:alice", "member", "group:eng")
    assert str(t) == "user:alice#member@group:eng"


@pytest.mark.parametrize(
    "bad",
    [
        "user:alice",  # no relation or object
        "user:alice#member",  # no object
        "#member@group:eng",  # empty subject
        "user:alice#@group:eng",  # empty relation
        "user:alice#mem ber@group:eng",  # bad relation charset
        "user:a!ice#member@group:eng",  # bad entity charset
        "user:alice#member@user:alice",  # self-loop
    ],
)
def test_parse_tuple_rejects(bad):
    with pytest.raises(InvalidTupleError):
        parse_tuple(bad)


def test_compile_tuples_interns_and_dedupes():
    tuples = parse_tuples(TUPLES + [TUPLES[0]])  # duplicate collapses
    graph, entity_ids, entities = compile_tuples(tuples)
    assert len(entities) == len(entity_ids) == 6
    assert graph.num_vertices == 6
    assert len(list(graph.edges())) == 5
    assert [entities[entity_ids[name]] for name in entities] == entities


# -- zookies ---------------------------------------------------------------
def test_zookie_round_trip():
    z = Zookie("acme", 7)
    decoded = Zookie.decode(z.encode())
    assert decoded == z
    assert decoded.epoch == 7 and decoded.namespace == "acme"


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "not-a-zookie",
        "z2.acme.7.deadbeef",  # unknown version
        "z1.acme.seven.deadbeef",  # non-integer epoch
        "z1.acme.7.ffffffff",  # digest mismatch
    ],
)
def test_zookie_decode_rejects(bad):
    with pytest.raises(InvalidZookieError):
        Zookie.decode(bad)


def test_zookie_tamper_detected():
    honest = Zookie("acme", 3).encode()
    version, namespace, epoch, digest = honest.split(".")
    with pytest.raises(InvalidZookieError):
        Zookie.decode(f"{version}.{namespace}.{int(epoch) + 5}.{digest}")


# -- the store -------------------------------------------------------------
@pytest.fixture
def store() -> AuthzStore:
    s = AuthzStore("TC")
    s.write("acme", writes=parse_tuples(TUPLES))
    return s


def test_check_follows_group_nesting(store):
    assert store.check("acme", "user:alice", "doc:handbook").allowed
    assert store.check("acme", "user:alice", "doc:design").allowed
    assert store.check("acme", "user:bob", "doc:handbook").allowed
    assert not store.check("acme", "user:bob", "doc:design").allowed


def test_list_objects_and_subjects(store):
    objs = store.list_objects("acme", "user:alice", object_type="doc")
    assert objs.names == ("doc:design", "doc:handbook")
    subs = store.list_subjects("acme", "doc:handbook", subject_type="user")
    assert subs.names == ("user:alice", "user:bob")


def test_expand_reports_route(store):
    result = store.expand("acme", "user:alice", direction="objects")
    assert result.route == "enum_closure"
    assert "doc:handbook" in result.names
    assert result.details


def test_unknown_entity_is_typed(store):
    with pytest.raises(UnknownEntityError) as excinfo:
        store.check("acme", "user:nobody", "doc:handbook")
    payload = excinfo.value.as_payload()
    assert payload["error_type"] == "unknown_entity"
    assert excinfo.value.http_status == 400


def test_revoke_advances_epoch_and_revokes(store):
    before = store.snapshot("acme").epoch
    z = store.write("acme", deletes=parse_tuples(["group:eng#viewer@doc:design"]))
    assert z.epoch == before + 1
    # the only grant on doc:design is gone, so the entity itself is gone
    assert "doc:design" not in store.list_objects("acme", "user:alice").names
    assert store.check("acme", "user:alice", "doc:handbook").allowed


def test_namespaces_are_isolated(store):
    store.write("other", writes=parse_tuples(["user:eve#viewer@doc:secret"]))
    with pytest.raises(UnknownEntityError):
        store.check("acme", "user:eve", "doc:secret")
    assert store.check("other", "user:eve", "doc:secret").allowed


def test_zookie_namespace_mismatch_rejected(store):
    z = store.write("other", writes=parse_tuples(["user:eve#viewer@doc:secret"]))
    with pytest.raises(InvalidZookieError):
        store.list_objects("acme", "user:alice", at_least=z)


def test_stale_zookie_is_typed(store):
    future = Zookie("acme", store.snapshot("acme").epoch + 10)
    with pytest.raises(StaleZookieError) as excinfo:
        store.check("acme", "user:alice", "doc:handbook", at_least=future)
    assert excinfo.value.http_status == 409
    payload = excinfo.value.as_payload()
    assert payload["error_type"] == "stale_zookie"
    assert payload["required_epoch"] == future.epoch


# -- churn and epochs ------------------------------------------------------
def test_zookies_advance_monotonically_with_churn():
    initial = parse_tuples(TUPLES)
    ops = tuple_churn_stream(initial, num_ops=40, seed=11)
    assert any(op.kind == "grant" for op in ops)
    assert any(op.kind == "revoke" for op in ops)
    store = AuthzStore("TC")
    first = store.write("acme", writes=initial)
    zookies = store.apply_updates("acme", ops)
    assert len(zookies) == len(ops)
    epochs = [first.epoch] + [z.epoch for z in zookies]
    assert epochs == list(range(1, len(ops) + 2))  # strictly +1 per write
    assert store.snapshot("acme").epoch == epochs[-1]


def test_stale_zookie_never_serves_older_epoch():
    """Under concurrent churn, `at_least` reads are fresh or refused."""
    initial = authz_tuples(8, 3, 12, seed=5)
    ops = tuple_churn_stream(initial, num_ops=120, seed=6)
    store = AuthzStore("TC")
    store.write("acme", writes=initial)
    failures: list[str] = []
    done = threading.Event()

    def writer():
        store.apply_updates("acme", ops)
        done.set()

    def reader():
        while not done.is_set():
            watermark = store.snapshot("acme").zookie
            try:
                result = store.list_objects("acme", "user:u0", at_least=watermark)
            except StaleZookieError:
                failures.append("refused a zookie the store itself issued")
                return
            except UnknownEntityError:
                continue  # churn revoked u0's last tuple at this epoch
            if result.zookie.epoch < watermark.epoch:
                failures.append(
                    f"served epoch {result.zookie.epoch} < required {watermark.epoch}"
                )
                return

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader) for _ in range(2)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert failures == []


# -- workload generators ---------------------------------------------------
def test_authz_tuples_covers_every_object():
    tuples = authz_tuples(10, 4, 50, seed=3)
    granted = {t.object for t in tuples if t.object.startswith("doc:")}
    assert len(granted) == 50


def test_authz_workload_shapes():
    tuples = authz_tuples(10, 4, 50, seed=3)
    ops = authz_workload(tuples, num_ops=200, seed=4, list_fraction=0.4)
    kinds = {op.kind for op in ops}
    assert kinds <= {"check", "list_objects", "list_subjects"}
    checks = [op for op in ops if op.kind == "check"]
    assert checks and all(op.object for op in checks)


def test_tuple_churn_ops_are_applicable():
    initial = parse_tuples(TUPLES)
    for op in tuple_churn_stream(initial, num_ops=30, seed=7):
        assert isinstance(op, TupleOp)
        assert op.tuple().subject != op.tuple().object


# -- HTTP surface ----------------------------------------------------------
@pytest.fixture
def authz_server():
    service = ReachabilityService(
        DiGraph(6, [(0, 1), (1, 2), (2, 3), (4, 5)]), index="PLL"
    )
    store = AuthzStore("TC")
    server = serve(service, port=0, authz=store)
    server.start_background()
    port = server.server_address[1]
    yield f"http://127.0.0.1:{port}"
    server.shutdown()
    server.server_close()


def _post(base: str, path: str, body: dict) -> tuple[int, dict]:
    request = urllib.request.Request(
        base + path,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=5) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get(base: str, path: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(base + path, timeout=5) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def test_http_authz_write_check_expand(authz_server):
    status, written = _post(
        authz_server, "/authz/write", {"namespace": "acme", "writes": TUPLES}
    )
    assert status == 200
    assert written["epoch"] == 1 and written["applied"] == len(TUPLES)
    zookie = written["zookie"]

    status, checked = _post(
        authz_server,
        "/authz/check",
        {"namespace": "acme", "subject": "user:alice", "object": "doc:handbook",
         "at_least": zookie},
    )
    assert status == 200 and checked["allowed"] is True

    status, batch = _post(
        authz_server,
        "/authz/check",
        {"namespace": "acme", "subject": "user:bob",
         "objects": ["doc:handbook", "doc:design"]},
    )
    assert status == 200 and batch["allowed"] == [True, False]

    status, expanded = _post(
        authz_server,
        "/authz/expand",
        {"namespace": "acme", "entity": "user:alice", "direction": "objects",
         "type": "doc"},
    )
    assert status == 200
    assert expanded["names"] == ["doc:design", "doc:handbook"]
    assert expanded["route"] == "enum_closure"


def test_http_authz_stale_zookie_409(authz_server):
    _post(authz_server, "/authz/write", {"namespace": "acme", "writes": TUPLES})
    future = Zookie("acme", 99).encode()
    status, payload = _post(
        authz_server,
        "/authz/check",
        {"namespace": "acme", "subject": "user:alice", "object": "doc:handbook",
         "at_least": future},
    )
    assert status == 409
    assert payload["error_type"] == "stale_zookie"


def test_http_authz_bad_tuple_400(authz_server):
    status, payload = _post(
        authz_server, "/authz/write",
        {"namespace": "acme", "writes": ["user:alice#member@user:alice"]},
    )
    assert status == 400
    assert payload["error_type"] == "invalid_tuple"


# -- satellite: typed invalid-vertex payloads on /reach --------------------
def test_http_reach_unknown_vertex_400(authz_server):
    status, payload = _get(authz_server, "/reach?source=0&target=42")
    assert status == 400
    assert payload["error_type"] == "invalid_vertex"
    assert payload["vertex"] == 42
    assert payload["num_vertices"] == 6
    assert "position" not in payload


def test_http_reach_batch_unknown_vertex_400(authz_server):
    status, payload = _post(
        authz_server, "/reach/batch", {"pairs": [[0, 1], [2, 99], [1, 3]]}
    )
    assert status == 400
    assert payload["error_type"] == "invalid_vertex"
    assert payload["vertex"] == 99
    assert payload["position"] == 1


def test_invalid_vertex_error_payloads():
    scalar = InvalidVertexError(9, 4)
    assert scalar.http_status == 400
    assert scalar.as_payload() == {
        "error": str(scalar),
        "error_type": "invalid_vertex",
        "vertex": 9,
        "num_vertices": 4,
    }
    batched = InvalidVertexError(9, 4, position=2)
    assert batched.as_payload()["position"] == 2
