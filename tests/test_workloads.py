"""Tests for datasets and query-workload generators."""

from __future__ import annotations

import pytest

from repro.graphs.generators import random_dag, random_labeled_digraph
from repro.graphs.topo import is_dag
from repro.traversal.online import bfs_reachable
from repro.traversal.rpq import rpq_reachable
from repro.workloads.datasets import (
    citation_network,
    protein_network,
    social_network,
    transaction_network,
)
from repro.workloads.queries import (
    alternation_workload,
    concatenation_workload,
    plain_workload,
)


class TestPlainWorkload:
    def test_ground_truth_is_correct(self):
        graph = random_dag(40, 100, seed=61)
        workload = plain_workload(graph, 100, positive_fraction=0.5, seed=62)
        assert len(workload) == 100
        for query in workload:
            assert query.reachable == bfs_reachable(graph, query.source, query.target)

    def test_positive_fraction_honoured(self):
        graph = random_dag(40, 100, seed=63)
        workload = plain_workload(graph, 200, positive_fraction=0.25, seed=64)
        positives = sum(q.reachable for q in workload)
        assert positives == 50

    def test_deterministic(self):
        graph = random_dag(30, 70, seed=65)
        a = plain_workload(graph, 50, 0.5, seed=66)
        b = plain_workload(graph, 50, 0.5, seed=66)
        assert a == b

    def test_bad_fraction_rejected(self):
        graph = random_dag(10, 20, seed=67)
        with pytest.raises(ValueError):
            plain_workload(graph, 10, 1.5, seed=68)


class TestConstrainedWorkloads:
    def test_alternation_ground_truth(self):
        graph = random_labeled_digraph(20, 50, ["a", "b", "c"], seed=69)
        workload = alternation_workload(graph, 40, seed=70)
        assert len(workload) == 40
        for query in workload:
            expected = rpq_reachable(graph, query.source, query.target, query.constraint)
            assert query.reachable == expected

    def test_concatenation_ground_truth(self):
        graph = random_labeled_digraph(20, 50, ["a", "b"], seed=71)
        workload = concatenation_workload(graph, 30, seed=72, max_period=2)
        for query in workload:
            expected = rpq_reachable(graph, query.source, query.target, query.constraint)
            assert query.reachable == expected
            assert query.constraint.endswith(")*")

    def test_unlabeled_graph_rejected(self):
        from repro.graphs.labeled import LabeledDiGraph

        with pytest.raises(ValueError):
            alternation_workload(LabeledDiGraph(3), 5, seed=73)


class TestDatasets:
    def test_social_network_shape(self):
        graph = social_network(num_vertices=150, seed=1)
        assert graph.num_vertices == 150
        assert graph.num_labels == 3

    def test_citation_network_is_dag(self):
        assert is_dag(citation_network(num_vertices=150, seed=2))

    def test_protein_network_is_layered_dag(self):
        graph = protein_network(num_layers=5, width=10, seed=3)
        assert graph.num_vertices == 50
        assert is_dag(graph)

    def test_transaction_network_is_cyclic_and_labeled(self):
        from repro.graphs.scc import strongly_connected_components

        graph = transaction_network(num_vertices=100, seed=4)
        assert graph.num_labels == 4
        components = strongly_connected_components(graph.to_plain())
        assert any(len(c) > 1 for c in components)
