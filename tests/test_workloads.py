"""Tests for datasets and query-workload generators."""

from __future__ import annotations

import pytest

from repro.graphs.generators import random_dag, random_labeled_digraph
from repro.graphs.topo import is_dag
from repro.traversal.online import bfs_reachable
from repro.traversal.rpq import rpq_reachable
from repro.workloads.datasets import (
    citation_network,
    protein_network,
    social_network,
    transaction_network,
)
from repro.workloads.queries import (
    alternation_workload,
    batch_workload,
    concatenation_workload,
    plain_workload,
)


class TestPlainWorkload:
    def test_ground_truth_is_correct(self):
        graph = random_dag(40, 100, seed=61)
        workload = plain_workload(graph, 100, positive_fraction=0.5, seed=62)
        assert len(workload) == 100
        for query in workload:
            assert query.reachable == bfs_reachable(graph, query.source, query.target)

    def test_positive_fraction_honoured(self):
        graph = random_dag(40, 100, seed=63)
        workload = plain_workload(graph, 200, positive_fraction=0.25, seed=64)
        positives = sum(q.reachable for q in workload)
        assert positives == 50

    def test_deterministic(self):
        graph = random_dag(30, 70, seed=65)
        a = plain_workload(graph, 50, 0.5, seed=66)
        b = plain_workload(graph, 50, 0.5, seed=66)
        assert a == b

    def test_bad_fraction_rejected(self):
        graph = random_dag(10, 20, seed=67)
        with pytest.raises(ValueError):
            plain_workload(graph, 10, 1.5, seed=68)


class TestBatchWorkload:
    def test_shape_mix_and_ground_truth(self):
        graph = random_dag(40, 100, seed=261)
        batches = batch_workload(graph, 3, 40, positive_fraction=0.5, seed=262)
        assert len(batches) == 3
        for batch in batches:
            assert len(batch) == 40
            assert sum(q.reachable for q in batch) == 20
            for query in batch:
                assert query.reachable == bfs_reachable(
                    graph, query.source, query.target
                )

    def test_sources_are_zipf_skewed(self):
        graph = random_dag(200, 500, seed=263)
        batches = batch_workload(
            graph, 4, 64, positive_fraction=0.3, seed=264, zipf_exponent=1.3
        )
        sources = [q.source for batch in batches for q in batch]
        top_share = max(sources.count(s) for s in set(sources)) / len(sources)
        # with 200 candidate sources a uniform draw gives ~0.5% to the top
        # source; Zipf concentrates an order of magnitude more on it
        assert top_share > 0.05

    def test_deterministic_and_uniform_limit(self):
        graph = random_dag(30, 70, seed=265)
        assert batch_workload(graph, 2, 16, 0.5, seed=266) == batch_workload(
            graph, 2, 16, 0.5, seed=266
        )
        flat = batch_workload(graph, 1, 16, 0.0, seed=267, zipf_exponent=0.0)
        assert all(not q.reachable for q in flat[0])

    def test_bad_parameters_rejected(self):
        graph = random_dag(10, 20, seed=268)
        with pytest.raises(ValueError):
            batch_workload(graph, 1, 10, 1.5, seed=1)
        with pytest.raises(ValueError):
            batch_workload(graph, -1, 10, 0.5, seed=1)
        with pytest.raises(ValueError):
            batch_workload(graph, 1, 10, 0.5, seed=1, zipf_exponent=-0.1)


class TestConstrainedWorkloads:
    def test_alternation_ground_truth(self):
        graph = random_labeled_digraph(20, 50, ["a", "b", "c"], seed=69)
        workload = alternation_workload(graph, 40, seed=70)
        assert len(workload) == 40
        for query in workload:
            expected = rpq_reachable(graph, query.source, query.target, query.constraint)
            assert query.reachable == expected

    def test_concatenation_ground_truth(self):
        graph = random_labeled_digraph(20, 50, ["a", "b"], seed=71)
        workload = concatenation_workload(graph, 30, seed=72, max_period=2)
        for query in workload:
            expected = rpq_reachable(graph, query.source, query.target, query.constraint)
            assert query.reachable == expected
            assert query.constraint.endswith(")*")

    def test_unlabeled_graph_rejected(self):
        from repro.graphs.labeled import LabeledDiGraph

        with pytest.raises(ValueError):
            alternation_workload(LabeledDiGraph(3), 5, seed=73)


class TestDatasets:
    def test_social_network_shape(self):
        graph = social_network(num_vertices=150, seed=1)
        assert graph.num_vertices == 150
        assert graph.num_labels == 3

    def test_citation_network_is_dag(self):
        assert is_dag(citation_network(num_vertices=150, seed=2))

    def test_protein_network_is_layered_dag(self):
        graph = protein_network(num_layers=5, width=10, seed=3)
        assert graph.num_vertices == 50
        assert is_dag(graph)

    def test_transaction_network_is_cyclic_and_labeled(self):
        from repro.graphs.scc import strongly_connected_components

        graph = transaction_network(num_vertices=100, seed=4)
        assert graph.num_labels == 4
        components = strongly_connected_components(graph.to_plain())
        assert any(len(c) > 1 for c in components)
