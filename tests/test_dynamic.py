"""Dynamic maintenance: every update-capable index stays exact.

Randomised insert/delete streams are applied through the index API and
the full reachability relation is re-checked against BFS after every
step — for plain (TOL, U2-hop, HOPI, Path-tree, IP, DAGGER, DBL) and
labeled (Zou, DLCR) dynamic indexes.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.core.registry import all_labeled_indexes, all_plain_indexes
from repro.errors import NotADAGError, UnsupportedOperationError
from repro.graphs.generators import gnp_digraph, random_dag, random_labeled_digraph
from repro.traversal.online import bfs_reachable
from repro.traversal.rpq import constrained_descendants

PLAIN = all_plain_indexes()
LABELED = all_labeled_indexes()

DYNAMIC_DAG = ["TOL", "U2-hop", "Path-tree", "IP", "DAGGER"]
DYNAMIC_GENERAL = ["Ralf et al."]


def _check_exact(index, graph):
    for s in range(graph.num_vertices):
        for t in range(graph.num_vertices):
            assert index.query(s, t) == bfs_reachable(graph, s, t), (s, t)


@pytest.mark.parametrize("seed", [0, 20, 24])  # 20/24 exposed a repair bug once
@pytest.mark.parametrize("name", DYNAMIC_DAG)
def test_dag_dynamic_indexes_track_update_stream(name, seed):
    rng = random.Random(seed)
    graph = random_dag(25, 50, seed=1)
    index = PLAIN[name].build(graph)
    g = index.graph
    for _step in range(25):
        edges = list(g.edges())
        if rng.random() < 0.5 and edges:
            u, v = edges[rng.randrange(len(edges))]
            index.delete_edge(u, v)
        else:
            for _attempt in range(80):
                u = rng.randrange(g.num_vertices)
                v = rng.randrange(g.num_vertices)
                if u != v and not g.has_edge(u, v) and not bfs_reachable(g, v, u):
                    index.insert_edge(u, v)
                    break
        _check_exact(index, g)


@pytest.mark.parametrize("name", DYNAMIC_GENERAL)
def test_general_dynamic_indexes_track_update_stream(name):
    rng = random.Random(99)
    graph = gnp_digraph(18, 0.08, seed=2)
    index = PLAIN[name].build(graph)
    g = index.graph
    for _step in range(25):
        edges = list(g.edges())
        if rng.random() < 0.4 and edges:
            u, v = edges[rng.randrange(len(edges))]
            index.delete_edge(u, v)
        else:
            for _attempt in range(80):
                u = rng.randrange(g.num_vertices)
                v = rng.randrange(g.num_vertices)
                if u != v and not g.has_edge(u, v):
                    index.insert_edge(u, v)
                    break
        _check_exact(index, g)


def test_dbl_supports_insertions_only():
    rng = random.Random(7)
    graph = gnp_digraph(18, 0.05, seed=3)
    index = PLAIN["DBL"].build(graph)
    g = index.graph
    for _step in range(25):
        for _attempt in range(80):
            u = rng.randrange(g.num_vertices)
            v = rng.randrange(g.num_vertices)
            if u != v and not g.has_edge(u, v):
                index.insert_edge(u, v)
                break
        _check_exact(index, g)
    with pytest.raises(UnsupportedOperationError):
        index.delete_edge(*next(iter(g.edges())))


@pytest.mark.parametrize("name", ["TOL", "IP", "DAGGER", "Path-tree"])
def test_cycle_creating_insert_rejected(name):
    graph = random_dag(6, 8, seed=4)
    index = PLAIN[name].build(graph)
    u, v = next(iter(graph.edges()))
    with pytest.raises(NotADAGError):
        index.insert_edge(v, u)


@pytest.mark.parametrize(
    "name", sorted(n for n, c in PLAIN.items() if c.metadata.dynamic == "no")
)
def test_static_indexes_reject_updates(name):
    graph = random_dag(8, 12, seed=5)
    index = PLAIN[name].build(graph)
    with pytest.raises(UnsupportedOperationError):
        index.insert_edge(0, 7)
    with pytest.raises(UnsupportedOperationError):
        index.delete_edge(*next(iter(graph.edges())))


@pytest.mark.parametrize("name", ["Zou et al.", "DLCR"])
def test_labeled_dynamic_indexes_track_update_stream(name):
    labels = ["a", "b", "c"]
    constraints = []
    for r in (1, 2, 3):
        for combo in itertools.combinations(labels, r):
            constraints.append("(" + "|".join(combo) + ")*")
    rng = random.Random(11)
    graph = random_labeled_digraph(12, 28, labels, seed=6)
    index = LABELED[name].build(graph)
    g = index.graph
    for _step in range(12):
        edges = list(g.edges())
        if rng.random() < 0.5 and edges:
            u, v, label = edges[rng.randrange(len(edges))]
            index.delete_edge(u, v, label)
        else:
            for _attempt in range(80):
                u = rng.randrange(g.num_vertices)
                v = rng.randrange(g.num_vertices)
                label = rng.choice(labels)
                if u != v and not g.has_edge(u, v, label):
                    index.insert_edge(u, v, label)
                    break
        for constraint in constraints:
            for s in range(g.num_vertices):
                reach = constrained_descendants(g, s, constraint)
                for t in range(g.num_vertices):
                    expected = t in reach or s == t  # star accepts empty paths
                    assert index.query(s, t, constraint) == expected


def test_dagger_resweep_restores_precision():
    from repro.core.base import TriState

    graph = random_dag(20, 60, seed=8)
    index = PLAIN["DAGGER"].build(graph, resweep_after=1)
    u, v = next(iter(graph.edges()))
    index.delete_edge(u, v)  # resweep_after=1 forces an immediate re-sweep
    # after the sweep, intervals are exact again: NO whenever unreachable
    # and containment violated — count that the filter still fires
    fires = sum(
        1
        for s in range(graph.num_vertices)
        for t in range(graph.num_vertices)
        if index.lookup(s, t) is TriState.NO
    )
    assert fires > 0
