"""Tests for the graph-statistics profiler."""

from __future__ import annotations

from repro.graphs.digraph import DiGraph
from repro.graphs.generators import cyclic_communities, layered_dag, random_dag
from repro.graphs.stats import graph_statistics


class TestGraphStatistics:
    def test_chain(self):
        graph = DiGraph(4, [(0, 1), (1, 2), (2, 3)])
        stats = graph_statistics(graph)
        assert stats.num_vertices == 4
        assert stats.num_edges == 3
        assert stats.is_dag
        assert stats.num_sources == 1
        assert stats.num_sinks == 1
        assert stats.depth == 3
        assert stats.num_sccs == 4
        assert stats.largest_scc == 1
        # chain: 3+2+1 reachable pairs over 4*3 ordered pairs
        assert abs(stats.reachability_density - 0.5) < 1e-9

    def test_cycle(self):
        graph = DiGraph(3, [(0, 1), (1, 2), (2, 0)])
        stats = graph_statistics(graph)
        assert not stats.is_dag
        assert stats.num_sccs == 1
        assert stats.largest_scc == 3
        assert stats.depth == 0  # single condensed vertex
        assert stats.reachability_density == 1.0

    def test_empty_graph(self):
        stats = graph_statistics(DiGraph(0))
        assert stats.num_vertices == 0
        assert stats.reachability_density == 0.0

    def test_layered_depth(self):
        graph = layered_dag(6, 5, 2, seed=1)
        stats = graph_statistics(graph)
        assert stats.depth == 5
        # the whole first layer plus any uncovered later vertices
        assert stats.num_sources >= 5

    def test_cyclic_communities_profile(self):
        graph = cyclic_communities(4, 5, 8, seed=2)
        stats = graph_statistics(graph)
        assert stats.num_sccs == 4
        assert stats.largest_scc == 5
        assert not stats.is_dag

    def test_sampled_density_close_to_exact(self):
        graph = random_dag(200, 600, seed=3)
        full = graph_statistics(graph, sample_sources=200)
        sampled = graph_statistics(graph, sample_sources=50, seed=4)
        assert abs(full.reachability_density - sampled.reachability_density) < 0.15

    def test_as_rows_renders(self):
        stats = graph_statistics(random_dag(20, 40, seed=5))
        rows = stats.as_rows()
        assert ("|V|", "20") in rows
        assert len(rows) == 9
