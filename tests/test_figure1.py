"""Every claim the paper makes about its Figure 1 running example.

These tests regenerate the FIG1a / FIG1b experiments of DESIGN.md: each
statement in §2 and §4 about the example graphs is checked against the
fixtures in :mod:`repro.workloads.datasets` and against real indexes.
"""

from __future__ import annotations

import pytest

from repro.core.registry import all_labeled_indexes, all_plain_indexes
from repro.labeled.gtc import GTCIndex
from repro.labeled.rlc import RLCIndex
from repro.traversal.online import bfs_reachable
from repro.traversal.rpq import rpq_reachable
from repro.workloads.datasets import FIGURE1_VERTICES, figure1a, figure1b, vertex_id

A, B, C, D, G, H, K, L, M = (vertex_id(x) for x in "ABCDGHKLM")


class TestFigure1a:
    """§2.1: plain reachability on Figure 1(a)."""

    def test_vertex_names(self):
        assert len(FIGURE1_VERTICES) == 9

    def test_qr_a_g_is_true_via_adhg(self):
        graph = figure1a()
        assert bfs_reachable(graph, A, G)
        # the witness path (A, D, H, G) the paper names exists edge by edge
        assert graph.has_edge(A, D)
        assert graph.has_edge(D, H)
        assert graph.has_edge(H, G)

    @pytest.mark.parametrize("name", sorted(all_plain_indexes()))
    def test_every_plain_index_agrees_on_the_example(self, name):
        from repro.core.condensed import CondensedIndex
        from repro.graphs.topo import is_dag

        graph = figure1a()
        cls = all_plain_indexes()[name]
        if cls.metadata.input_kind == "DAG" and not is_dag(graph):
            index = CondensedIndex.build(graph, inner=cls)
        else:
            index = cls.build(graph)
        for s in graph.vertices():
            for t in graph.vertices():
                assert index.query(s, t) == bfs_reachable(graph, s, t)


class TestFigure1b:
    """§2.2 and §4: path-constrained claims on Figure 1(b)."""

    def test_labels(self):
        graph = figure1b()
        assert set(graph.labels()) == {"friendOf", "follows", "worksFor"}

    def test_qr_a_g_friendof_follows_star_is_false(self):
        graph = figure1b()
        assert not rpq_reachable(graph, A, G, "(friendOf | follows)*")

    def test_every_a_g_path_includes_worksfor(self):
        graph = figure1b()
        # but A reaches G when worksFor is allowed
        assert rpq_reachable(graph, A, G, "(friendOf | follows | worksFor)*")

    def test_spls_from_l_to_m(self):
        """§4.1: p1 = (L,worksFor,C,worksFor,M) dominates p2 via K."""
        graph = figure1b()
        index = GTCIndex.build(graph)
        masks = index.spls(L, M)
        works_for = 1 << graph.label_id("worksFor")
        follows = 1 << graph.label_id("follows")
        assert masks == [works_for]
        # both named paths exist
        assert graph.has_edge(L, C, "worksFor") and graph.has_edge(C, M, "worksFor")
        assert graph.has_edge(L, K, "follows") and graph.has_edge(K, M, "worksFor")
        # and the subset rule makes {follows, worksFor} redundant
        assert works_for & ~(works_for | follows) == 0

    def test_spls_transitivity_a_to_m(self):
        """§4.1: SPLS(A→M) = SPLS(A→L) ∪ SPLS(L→M) = {follows, worksFor}."""
        graph = figure1b()
        index = GTCIndex.build(graph)
        follows = 1 << graph.label_id("follows")
        works_for = 1 << graph.label_id("worksFor")
        assert index.spls(A, L) == [follows]
        assert index.spls(L, M) == [works_for]
        assert index.spls(A, M) == [follows | works_for]

    def test_dijkstra_example_l_to_h(self):
        """§4.1.2: p3 (1 distinct label) beats p4 (2 distinct labels)."""
        graph = figure1b()
        # both paths exist
        assert graph.has_edge(L, C, "worksFor") and graph.has_edge(C, H, "worksFor")
        assert graph.has_edge(L, D, "worksFor") and graph.has_edge(D, H, "friendOf")
        index = GTCIndex.build(graph)
        works_for = 1 << graph.label_id("worksFor")
        friend_of = 1 << graph.label_id("friendOf")
        masks = index.spls(L, H)
        # p3's single-label set is recorded ...
        assert works_for in masks
        # ... and p4's {worksFor, friendOf} is ignored as dominated
        assert works_for | friend_of not in masks

    def test_rlc_example_l_to_b(self):
        """§4.2: Qr(L, B, (worksFor · friendOf)*) = true, MR of the path."""
        graph = figure1b()
        assert rpq_reachable(graph, L, B, "(worksFor . friendOf)*")
        index = RLCIndex.build(graph, max_period=2)
        assert index.query(L, B, "(worksFor . friendOf)*")
        # the witness path exists edge by edge
        assert graph.has_edge(L, D, "worksFor")
        assert graph.has_edge(D, H, "friendOf")
        assert graph.has_edge(H, G, "worksFor")
        assert graph.has_edge(G, B, "friendOf")

    def test_minimum_repeat_of_the_witness(self):
        from repro.labeled.kleene import minimum_repeat

        sequence = ("worksFor", "friendOf", "worksFor", "friendOf")
        assert minimum_repeat(sequence) == ("worksFor", "friendOf")

    @pytest.mark.parametrize("name", sorted(all_labeled_indexes()))
    def test_every_labeled_index_agrees_on_the_example(self, name):
        graph = figure1b()
        cls = all_labeled_indexes()[name]
        index = cls.build(graph)
        if cls.metadata.constraint == "Alternation":
            constraints = [
                "(friendOf | follows)*",
                "(worksFor)*",
                "(friendOf | follows | worksFor)*",
                "(worksFor | follows)+",
            ]
        else:
            constraints = ["(worksFor . friendOf)*", "(worksFor)*", "(follows)+"]
        for constraint in constraints:
            for s in graph.vertices():
                for t in graph.vertices():
                    expected = rpq_reachable(graph, s, t, constraint)
                    assert index.query(s, t, constraint) == expected, (
                        name,
                        constraint,
                        s,
                        t,
                    )

    def test_plain_projection_matches_figure1a(self):
        assert figure1b().to_plain() == figure1a()
