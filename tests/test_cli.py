"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.graphs.generators import random_dag, random_labeled_digraph
from repro.graphs.io import write_edge_list, write_labeled_edge_list


@pytest.fixture
def edge_list_file(tmp_path):
    graph = random_dag(20, 45, seed=81)
    path = tmp_path / "graph.txt"
    write_edge_list(graph, path)
    return path, graph


@pytest.fixture
def labeled_file(tmp_path):
    graph = random_labeled_digraph(15, 35, ["a", "b"], seed=82)
    path = tmp_path / "labeled.txt"
    write_labeled_edge_list(graph, path)
    return path, graph


class TestList:
    def test_prints_both_taxonomies(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out
        assert "GRAIL" in out and "P2H+" in out and "RLC" in out


class TestBuild:
    def test_build_reports_size(self, edge_list_file, capsys):
        path, _graph = edge_list_file
        assert main(["build", str(path), "--index", "PLL"]) == 0
        out = capsys.readouterr().out
        assert "PLL" in out and "entries" in out

    def test_dag_index_on_cyclic_file(self, tmp_path, capsys):
        path = tmp_path / "cyclic.txt"
        path.write_text("a b\nb a\n")
        assert main(["build", str(path), "--index", "GRAIL"]) == 0


class TestQuery:
    def test_positive_query_exits_zero(self, edge_list_file, capsys):
        path, graph = edge_list_file
        u, v = next(iter(graph.edges()))
        code = main(["query", str(path), str(u), str(v), "--index", "BFL"])
        assert code == 0
        assert "true" in capsys.readouterr().out

    def test_unknown_vertex_exits_two(self, edge_list_file, capsys):
        path, _graph = edge_list_file
        assert main(["query", str(path), "nope", "0"]) == 2

    def test_negative_query_exits_one(self, tmp_path, capsys):
        path = tmp_path / "two.txt"
        path.write_text("a b\nc d\n")
        assert main(["query", str(path), "a", "d"]) == 1
        assert "false" in capsys.readouterr().out

    def test_pairs_file_answers_in_order(self, tmp_path, capsys):
        path = tmp_path / "chain.txt"
        path.write_text("a b\nb c\nc d\n")
        pairs = tmp_path / "pairs.txt"
        pairs.write_text("# header comment\na d\nd a  # inline comment\n\nb b\n")
        code = main(
            ["query", str(path), "--index", "GRAIL", "--pairs-file", str(pairs)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.splitlines() == [
            "Qr(a, d) = true",
            "Qr(d, a) = false",
            "Qr(b, b) = true",
        ]

    def test_pairs_file_unknown_vertex_exits_two(self, tmp_path, capsys):
        path = tmp_path / "two.txt"
        path.write_text("a b\n")
        pairs = tmp_path / "pairs.txt"
        pairs.write_text("a nope\n")
        assert main(["query", str(path), "--pairs-file", str(pairs)]) == 2
        assert "unknown vertex" in capsys.readouterr().err

    def test_pairs_file_malformed_line_exits_two(self, tmp_path, capsys):
        path = tmp_path / "two.txt"
        path.write_text("a b\n")
        pairs = tmp_path / "pairs.txt"
        pairs.write_text("a b c\n")
        assert main(["query", str(path), "--pairs-file", str(pairs)]) == 2
        assert "SOURCE TARGET" in capsys.readouterr().err

    def test_query_without_pair_or_file_exits_two(self, tmp_path, capsys):
        path = tmp_path / "two.txt"
        path.write_text("a b\n")
        assert main(["query", str(path)]) == 2
        assert "pairs-file" in capsys.readouterr().err


class TestLabeledQuery:
    def test_lquery(self, labeled_file, capsys):
        path, graph = labeled_file
        u, v, label = next(iter(graph.edges()))
        code = main(
            ["lquery", str(path), str(u), str(v), f"({label})*", "--index", "P2H+"]
        )
        assert code == 0
        assert "true" in capsys.readouterr().out

    def test_lquery_rlc(self, labeled_file):
        path, graph = labeled_file
        u, v, label = next(iter(graph.edges()))
        code = main(["lquery", str(path), str(u), str(v), f"({label})*", "--index", "RLC"])
        assert code == 0

    def test_unknown_vertex(self, labeled_file):
        path, _graph = labeled_file
        assert main(["lquery", str(path), "zz", "0", "(a)*"]) == 2


class TestPersistenceCommands:
    def test_build_save_and_inspect(self, edge_list_file, capsys, tmp_path):
        path, _graph = edge_list_file
        saved = tmp_path / "idx.repro"
        assert main(["build", str(path), "--index", "PLL", "--save", str(saved)]) == 0
        assert saved.exists()
        assert main(["inspect", str(saved)]) == 0
        out = capsys.readouterr().out
        assert "PLLIndex" in out

    def test_query_from_saved_index(self, edge_list_file, capsys, tmp_path):
        path, graph = edge_list_file
        saved = tmp_path / "idx.repro"
        assert main(["build", str(path), "--index", "PLL", "--save", str(saved)]) == 0
        u, v = next(iter(graph.edges()))
        code = main(["query", str(path), str(u), str(v), "--load", str(saved)])
        assert code == 0
        assert "true" in capsys.readouterr().out

    def test_lquery_from_saved_index(self, labeled_file, capsys, tmp_path):
        from repro.core.registry import labeled_index
        from repro.graphs.io import read_labeled_edge_list
        from repro.persistence import save_index

        path, graph = labeled_file
        built_graph, _ids = read_labeled_edge_list(path)
        saved = tmp_path / "p2h.repro"
        save_index(labeled_index("P2H+").build(built_graph), saved)
        u, v, label = next(iter(graph.edges()))
        code = main(
            ["lquery", str(path), str(u), str(v), f"({label})*", "--load", str(saved)]
        )
        assert code == 0
        assert "true" in capsys.readouterr().out

    def test_query_load_rejects_labeled_index(self, edge_list_file, labeled_file, tmp_path):
        from repro.core.registry import labeled_index
        from repro.graphs.io import read_labeled_edge_list
        from repro.persistence import save_index

        path, _graph = edge_list_file
        lpath, _lgraph = labeled_file
        built_graph, _ids = read_labeled_edge_list(lpath)
        saved = tmp_path / "wrong.repro"
        save_index(labeled_index("P2H+").build(built_graph), saved)
        assert main(["query", str(path), "0", "1", "--load", str(saved)]) == 2


class TestExperimentCommand:
    def test_orders_experiment(self, capsys):
        assert main(["experiment", "orders"]) == 0
        out = capsys.readouterr().out
        assert "ABL-ORDER" in out
        assert "topological (TFL)" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "nope"]) == 2
        assert "known:" in capsys.readouterr().err


class TestStatsCommand:
    def test_stats_on_edge_list(self, edge_list_file, capsys):
        path, graph = edge_list_file
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "|V|" in out
        assert str(graph.num_vertices) in out


class TestCompareCommand:
    def test_compare_prints_matrix(self, edge_list_file, capsys):
        path, _graph = edge_list_file
        assert main(["compare", str(path), "--queries", "40"]) == 0
        out = capsys.readouterr().out
        assert "online BFS" in out
        assert "PLL" in out and "GRAIL" in out


class TestExperimentSmall:
    @pytest.mark.parametrize("name", ["speed", "size", "scaling", "orders"])
    def test_small_experiments_run(self, name, capsys):
        assert main(["experiment", name, "--small"]) == 0
        out = capsys.readouterr().out
        assert "|" in out  # a rendered table
