"""Index-specific behaviour tests for the plain (§3) families."""

from __future__ import annotations

import pytest

from repro.core.base import TriState
from repro.core.registry import plain_index
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import random_dag, random_tree, tree_with_shortcuts
from repro.traversal.online import bfs_reachable, descendants


class TestTransitiveClosure:
    def test_size_equals_reachable_pairs_on_dag(self):
        graph = random_dag(20, 45, seed=51)
        index = plain_index("TC").build(graph)
        expected = sum(len(descendants(graph, v)) for v in graph.vertices())
        assert index.size_in_entries() == expected


class TestGrail:
    def test_deterministic_given_seed(self):
        graph = random_dag(30, 70, seed=52)
        a = plain_index("GRAIL").build(graph, k=3, seed=9)
        b = plain_index("GRAIL").build(graph, k=3, seed=9)
        for s in range(30):
            for t in range(30):
                assert a.lookup(s, t) == b.lookup(s, t)

    def test_k_validated(self):
        graph = random_dag(5, 6, seed=53)
        with pytest.raises(ValueError):
            plain_index("GRAIL").build(graph, k=0)

    def test_more_labelings_never_weaken_the_filter(self):
        graph = random_dag(40, 100, seed=54)
        small = plain_index("GRAIL").build(graph, k=1, seed=1)
        large = plain_index("GRAIL").build(graph, k=4, seed=1)
        for s in range(40):
            for t in range(40):
                if small.lookup(s, t) is TriState.NO:
                    # k=4 includes the k=1 labeling (same seed, same first pass)
                    assert large.lookup(s, t) is TriState.NO


class TestFerrari:
    def test_budget_respected(self):
        graph = random_dag(50, 180, seed=55)
        for k in (1, 2, 4):
            index = plain_index("Ferrari").build(graph, k=k)
            assert index.size_in_entries() <= k * graph.num_vertices

    def test_k_validated(self):
        with pytest.raises(ValueError):
            plain_index("Ferrari").build(random_dag(5, 6, seed=56), k=0)


class TestApproximateTC:
    def test_bfl_param_validation(self):
        graph = random_dag(5, 6, seed=57)
        with pytest.raises(ValueError):
            plain_index("BFL").build(graph, bits=0)
        with pytest.raises(ValueError):
            plain_index("BFL").build(graph, num_hashes=0)

    def test_ip_param_validation(self):
        with pytest.raises(ValueError):
            plain_index("IP").build(random_dag(5, 6, seed=58), k=0)

    def test_bfl_bits_accessor(self):
        index = plain_index("BFL").build(random_dag(10, 20, seed=59), bits=64)
        assert index.bits == 64

    def test_ip_k_accessor(self):
        index = plain_index("IP").build(random_dag(10, 20, seed=60), k=3)
        assert index.k == 3


class TestDualLabeling:
    def test_pure_tree_has_no_links(self):
        tree = random_tree(40, seed=61)
        index = plain_index("Dual labeling").build(tree)
        # n intervals, zero closure bits, zero incidence
        assert index.size_in_entries() == tree.num_vertices

    def test_links_grow_with_shortcuts(self):
        few = plain_index("Dual labeling").build(tree_with_shortcuts(60, 3, seed=62))
        many = plain_index("Dual labeling").build(tree_with_shortcuts(60, 15, seed=62))
        assert many.size_in_entries() > few.size_in_entries()


class TestFeline:
    def test_coordinates_dominate_along_edges(self):
        graph = random_dag(40, 90, seed=63)
        index = plain_index("Feline").build(graph)
        coords = index.coordinates
        for u, v in graph.edges():
            assert coords[u][0] < coords[v][0]
            assert coords[u][1] < coords[v][1]


class TestOReach:
    def test_supports_are_high_degree(self):
        graph = random_dag(50, 150, seed=64)
        index = plain_index("O'Reach").build(graph, k=4)
        supports = index.supports
        assert len(supports) == 4
        degrees = sorted(
            (graph.in_degree(v) + graph.out_degree(v) for v in graph.vertices()),
            reverse=True,
        )
        for s in supports:
            assert graph.in_degree(s) + graph.out_degree(s) >= degrees[10]


class TestDBL:
    def test_hub_accessor(self):
        graph = random_dag(30, 70, seed=65)
        index = plain_index("DBL").build(graph, num_hubs=5)
        assert len(index.hubs) == 5


class TestTreeSSPI:
    def test_surplus_lists_cover_non_tree_edges(self):
        graph = random_dag(30, 80, seed=66)
        index = plain_index("Tree+SSPI").build(graph)
        surplus_edges = sum(len(lst) for lst in index.surplus_predecessors)
        # every edge is either a tree edge (<= n-1 of them) or in the SSPI
        assert surplus_edges >= graph.num_edges - (graph.num_vertices - 1)


class TestChainsBasedIndexes:
    def test_path_tree_decomposition_accessor(self):
        graph = random_dag(30, 60, seed=67)
        index = plain_index("Path-tree").build(graph)
        assert index.decomposition.num_chains >= 1
        assert len(index.decomposition.chain_of) == graph.num_vertices

    def test_three_hop_contours_are_sound(self):
        graph = random_dag(30, 60, seed=68)
        index = plain_index("3-Hop").build(graph)
        decomposition = index.decomposition
        for v in graph.vertices():
            for c, p in index._contours[v]:
                head = decomposition.chains[c][p]
                assert bfs_reachable(graph, v, head)


class TestTwoHopGreedy:
    def test_labels_are_sound(self):
        graph = random_dag(25, 55, seed=69)
        index = plain_index("2-Hop").build(graph)
        for v in graph.vertices():
            for hop in index.labels.l_out[v]:
                assert bfs_reachable(graph, v, hop)
            for hop in index.labels.l_in[v]:
                assert bfs_reachable(graph, hop, v)

    def test_smaller_than_tc_on_shared_structure(self):
        # a bowtie: k sources -> middle -> k sinks; 2-hop stores O(k),
        # the TC stores O(k^2) pairs
        k = 10
        graph = DiGraph(2 * k + 1)
        middle = 2 * k
        for i in range(k):
            graph.add_edge(i, middle)
            graph.add_edge(middle, k + i)
        two_hop = plain_index("2-Hop").build(graph)
        tc = plain_index("TC").build(graph)
        assert two_hop.size_in_entries() < tc.size_in_entries() / 2


class TestTOLFamily:
    def test_tol_accepts_explicit_order(self):
        graph = random_dag(20, 40, seed=70)
        order = list(range(20))
        index = plain_index("TOL").build(graph, order=order)
        assert index.order == order
        for s in range(20):
            for t in range(20):
                assert index.query(s, t) == bfs_reachable(graph, s, t)

    def test_pll_and_dl_equivalent_answers(self):
        """§3.2: "It has been proven that DL and PLL are equivalent"."""
        graph = random_dag(40, 100, seed=71)
        pll = plain_index("PLL").build(graph)
        dl = plain_index("DL").build(graph)
        for s in range(40):
            for t in range(40):
                assert pll.query(s, t) == dl.query(s, t)
