"""Tests for the §5-extension no-false-negative partial LCR index."""

from __future__ import annotations

import itertools

import pytest

from repro.core.base import TriState
from repro.graphs.generators import random_labeled_digraph
from repro.labeled.lcr_filter import LCRFilterIndex
from repro.traversal.rpq import constrained_descendants

LABELS = ["a", "b", "c"]


def _constraints():
    result = []
    for r in range(1, len(LABELS) + 1):
        for combo in itertools.combinations(LABELS, r):
            result.append("(" + "|".join(combo) + ")*")
            result.append("(" + "|".join(combo) + ")+")
    return result


@pytest.fixture(scope="module")
def graph():
    return random_labeled_digraph(18, 45, LABELS, seed=71)


@pytest.fixture(scope="module")
def index(graph):
    return LCRFilterIndex.build(graph)


class TestLookupContract:
    def test_never_answers_yes(self, graph, index):
        full_mask = (1 << graph.num_labels) - 1
        for s in graph.vertices():
            for t in graph.vertices():
                for mask in (full_mask, 0b01, 0b11):
                    assert index.lookup_mask(s, t, mask) is not TriState.YES

    def test_no_false_negatives(self, graph, index):
        """A NO must certify non-reachability under the constraint."""
        for r in range(1, len(LABELS) + 1):
            for combo in itertools.combinations(LABELS, r):
                mask = graph.label_set_mask(combo)
                constraint = "(" + "|".join(combo) + ")*"
                for s in graph.vertices():
                    reach = constrained_descendants(graph, s, constraint)
                    for t in graph.vertices():
                        if index.lookup_mask(s, t, mask) is TriState.NO:
                            assert t not in reach, (combo, s, t)

    def test_filter_kills_many_negatives(self, graph, index):
        """The point of the design: negatives die at the filter."""
        mask = graph.label_set_mask(["a"])
        killed = 0
        total = 0
        reach_cache = {
            s: constrained_descendants(graph, s, "(a)*") for s in graph.vertices()
        }
        for s in graph.vertices():
            for t in graph.vertices():
                if s != t and t not in reach_cache[s]:
                    total += 1
                    if index.lookup_mask(s, t, mask) is TriState.NO:
                        killed += 1
        assert total > 0
        assert killed / total > 0.3, f"only {killed}/{total} negatives filtered"


class TestExactness:
    def test_query_is_exact(self, graph, index):
        for constraint in _constraints():
            for s in graph.vertices():
                reach = constrained_descendants(graph, s, constraint)
                for t in graph.vertices():
                    expected = t in reach or (
                        s == t and constraint.endswith(")*")
                    )
                    assert index.query(s, t, constraint) == expected, (
                        constraint,
                        s,
                        t,
                    )

    def test_exact_on_multiple_seeds(self):
        for seed in (72, 73):
            graph = random_labeled_digraph(14, 34, LABELS, seed=seed)
            index = LCRFilterIndex.build(graph)
            for constraint in _constraints()[:6]:
                for s in graph.vertices():
                    reach = constrained_descendants(graph, s, constraint)
                    for t in graph.vertices():
                        expected = t in reach or (
                            s == t and constraint.endswith(")*")
                        )
                        assert index.query(s, t, constraint) == expected


class TestMetadata:
    def test_partial_general_alternation(self):
        meta = LCRFilterIndex.metadata
        assert not meta.complete
        assert meta.input_kind == "General"
        assert meta.constraint == "Alternation"

    def test_not_registered_in_table2(self):
        """An extension beyond the paper: must not disturb the taxonomy."""
        from repro.core.registry import all_labeled_indexes

        assert "LCR-Filter" not in all_labeled_indexes()

    def test_size_counts_every_filter(self, graph, index):
        from math import comb

        num_filters = sum(comb(graph.num_labels, k) for k in (0, 1, 2))
        expected = 2 * graph.num_vertices * num_filters
        assert index.size_in_entries() == expected

    def test_max_exclude_one_matches_old_layout(self, graph):
        index = LCRFilterIndex.build(graph, max_exclude=1)
        expected = 2 * graph.num_vertices * (graph.num_labels + 1)
        assert index.size_in_entries() == expected
