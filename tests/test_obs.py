"""The repro.obs substrate: tracer semantics, build reports, metrics."""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro.bench.jsonout import emit, provenance
from repro.core.condensed import CondensedIndex
from repro.core.registry import plain_index
from repro.obs.build import build_phase
from repro.obs.metrics import LatencyHistogram, MetricsRegistry
from repro.obs.tracer import (
    TRACER,
    disable_tracing,
    enable_tracing,
    export_jsonl,
    render_span_tree,
    span_to_dict,
)


@pytest.fixture(autouse=True)
def _reset_tracer():
    """Every test starts and ends with the global tracer off and empty."""
    disable_tracing()
    TRACER.clear()
    yield
    disable_tracing()
    TRACER.clear()


# -- tracer on/off ---------------------------------------------------------
def test_disabled_tracer_records_nothing():
    assert not TRACER.enabled
    with TRACER.span("outer", k=1) as span:
        span.annotate(extra=2)  # the null span swallows annotations
        with TRACER.span("inner"):
            pass
    assert TRACER.finished() == []
    assert TRACER.statistics()["roots_started"] == 0


def test_disabled_span_is_shared_noop():
    a = TRACER.span("a")
    b = TRACER.span("b")
    assert a is b  # no allocation on the disabled path


def test_enabled_tracer_nests_spans():
    enable_tracing()
    with TRACER.span("root", index="PLL") as root:
        with TRACER.span("child") as child:
            child.annotate(entries=5)
        root.annotate(route="label_probe")
    roots = TRACER.finished()
    assert [s.name for s in roots] == ["root"]
    assert roots[0].attributes == {"index": "PLL", "route": "label_probe"}
    assert [c.name for c in roots[0].children] == ["child"]
    assert roots[0].children[0].attributes == {"entries": 5}
    assert roots[0].duration_s >= roots[0].children[0].duration_s >= 0.0


def test_current_span_annotation():
    enable_tracing()
    assert TRACER.current_span() is None
    with TRACER.span("root"):
        TRACER.current_span().annotate(tag="here")
    assert TRACER.finished()[0].attributes == {"tag": "here"}


# -- sampling --------------------------------------------------------------
def test_sample_rate_zero_drops_whole_traces():
    enable_tracing(sample_rate=0.0)
    for _ in range(10):
        with TRACER.span("root"):
            with TRACER.span("child"):
                pass  # children of an unsampled root must be no-ops too
    stats = TRACER.statistics()
    assert stats["roots_started"] == 10
    assert stats["roots_sampled"] == 0
    assert TRACER.finished() == []


def test_sample_rate_one_keeps_everything():
    enable_tracing(sample_rate=1.0)
    for _ in range(10):
        with TRACER.span("root"):
            pass
    stats = TRACER.statistics()
    assert stats["roots_started"] == stats["roots_sampled"] == 10
    assert len(TRACER.finished()) == 10


def test_sample_rate_validated():
    with pytest.raises(ValueError):
        TRACER.configure(sample_rate=1.5)


def test_ring_buffer_evicts_oldest():
    enable_tracing(ring_capacity=3)
    for i in range(5):
        with TRACER.span(f"root-{i}"):
            pass
    assert [s.name for s in TRACER.finished()] == ["root-2", "root-3", "root-4"]
    TRACER.configure(ring_capacity=256)  # restore the default size


def test_threads_do_not_cross_nest():
    enable_tracing()
    barrier = threading.Barrier(2)

    def trace(name: str) -> None:
        with TRACER.span(name):
            barrier.wait()  # both spans open simultaneously
            with TRACER.span(f"{name}.child"):
                pass

    threads = [
        threading.Thread(target=trace, args=(f"t{i}",)) for i in range(2)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    roots = {s.name: s for s in TRACER.finished()}
    assert set(roots) == {"t0", "t1"}
    for name, span in roots.items():
        assert [c.name for c in span.children] == [f"{name}.child"]


# -- export ----------------------------------------------------------------
def test_span_export_shapes(tmp_path):
    enable_tracing()
    with TRACER.span("root", obj=object()) as span:
        span.annotate(n=3)
        with TRACER.span("child"):
            pass
    root = TRACER.finished()[0]
    data = span_to_dict(root)
    json.dumps(data)  # non-primitive attributes fall back to repr()
    assert data["name"] == "root"
    assert data["attributes"]["n"] == 3
    assert isinstance(data["attributes"]["obj"], str)
    assert [c["name"] for c in data["children"]] == ["child"]

    text = render_span_tree(root)
    assert text.splitlines()[0].startswith("- root ")
    assert "  - child " in text

    out = io.StringIO()
    assert export_jsonl([root], out) == 1
    assert json.loads(out.getvalue())["name"] == "root"
    path = tmp_path / "spans.jsonl"
    assert export_jsonl([root, root], path) == 2
    assert len(path.read_text().splitlines()) == 2


def test_sink_receives_finished_roots():
    seen = []
    enable_tracing()
    TRACER.configure(sink=seen.append)
    with TRACER.span("root"):
        with TRACER.span("child"):
            pass
    assert [s.name for s in seen] == ["root"]
    TRACER._sink = None  # detach so later tests don't push into `seen`


# -- build reports ---------------------------------------------------------
def test_build_report_phases(small_dag):
    index = plain_index("PLL").build(small_dag)
    report = index.build_report
    assert report.index == "PLL"
    assert [p.name for p in report.phases] == [
        "landmark-order",
        "pruned-bfs-labeling",
    ]
    assert report.entries == index.size_in_entries()
    assert report.total_seconds >= sum(p.seconds for p in report.phases) >= 0.0
    assert report.phases[1].meta["entries"] == index.size_in_entries()
    json.dumps(report.as_dict())
    assert "pruned-bfs-labeling" in report.render_text()


def test_nested_build_becomes_one_phase(cyclic_graph):
    index = CondensedIndex.build(cyclic_graph, inner=plain_index("Tree cover"))
    names = [p.name for p in index.build_report.phases]
    assert "build.Tree cover" in names
    nested = next(
        p for p in index.build_report.phases if p.name == "build.Tree cover"
    )
    assert nested.children  # the inner family's own phases ride along


def test_build_phase_outside_build_is_noop():
    with build_phase("orphan") as phase:
        phase.annotate(ignored=True)  # no accumulator in context: nothing breaks


def test_builds_traced_as_spans(small_dag):
    enable_tracing()
    plain_index("PLL").build(small_dag)
    roots = TRACER.finished()
    assert [s.name for s in roots] == ["build"]
    assert roots[0].attributes["index"] == "PLL"
    assert {c.name for c in roots[0].children} == {
        "build.landmark-order",
        "build.pruned-bfs-labeling",
    }


# -- metrics ---------------------------------------------------------------
def test_histogram_summary_is_consistent():
    histogram = LatencyHistogram()
    for sample in (1e-6, 5e-5, 2e-3, 0.4):
        histogram.observe(sample)
    summary = histogram.summary()
    assert summary["count"] == 4
    assert summary["mean_s"] == pytest.approx(sum((1e-6, 5e-5, 2e-3, 0.4)) / 4)
    assert summary["p50_s"] <= summary["p95_s"] <= summary["p99_s"]
    assert summary["max_s"] == pytest.approx(0.4)


def test_histogram_summary_race():
    """A concurrent scrape never sees count and percentiles disagree."""
    histogram = LatencyHistogram()
    stop = threading.Event()
    failures = []

    def writer():
        while not stop.is_set():
            histogram.observe(1e-4)

    def reader():
        for _ in range(300):
            summary = histogram.summary()
            if summary["count"] and summary["p99_s"] == 0.0:
                failures.append(summary)
        stop.set()

    threads = [threading.Thread(target=writer), threading.Thread(target=reader)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not failures


def test_histogram_concurrent_writers_lose_nothing():
    """N writer threads, fixed sample budget: every observation lands."""
    histogram = LatencyHistogram()
    per_thread = 2_000
    num_threads = 4

    def writer(sample: float) -> None:
        for _ in range(per_thread):
            histogram.observe(sample)

    threads = [
        threading.Thread(target=writer, args=((slot + 1) * 1e-4,))
        for slot in range(num_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert histogram.count == per_thread * num_threads
    expected = sum((slot + 1) * 1e-4 * per_thread for slot in range(num_threads))
    assert histogram.total_seconds == pytest.approx(expected, rel=1e-9)


def test_registry_counters_concurrent_increments_lose_nothing():
    registry = MetricsRegistry()
    counter = registry.counter("hammered")
    per_thread = 5_000

    def writer() -> None:
        for _ in range(per_thread):
            counter.increment()

    threads = [threading.Thread(target=writer) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert counter.value == 4 * per_thread
    assert registry.counter_values()["hammered"] == 4 * per_thread


def test_histogram_quantiles_monotone_under_concurrent_writes():
    """Summaries scraped mid-hammer always satisfy p50 <= p95 <= p99 <= max."""
    histogram = LatencyHistogram()
    stop = threading.Event()
    failures = []

    def writer() -> None:
        sample = 1e-6
        while not stop.is_set():
            histogram.observe(sample)
            sample = sample * 3.7 % 0.01 + 1e-6  # spread across buckets

    def reader() -> None:
        for _ in range(300):
            summary = histogram.summary()
            if summary["count"] == 0:
                continue
            ordered = (
                summary["p50_s"] <= summary["p95_s"] <= summary["p99_s"]
            )
            if not ordered or summary["mean_s"] < 0:
                failures.append(summary)
        stop.set()

    threads = [threading.Thread(target=writer) for _ in range(2)]
    threads.append(threading.Thread(target=reader))
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not failures


def test_histogram_window_and_merge():
    """The sketch-backed API: windowed views expire, merges add up."""
    now = [0.0]
    first = LatencyHistogram(window_s=60.0, num_slices=6, clock=lambda: now[0])
    second = LatencyHistogram(window_s=60.0, num_slices=6, clock=lambda: now[0])
    for _ in range(10):
        first.observe(1e-3)
    now[0] = 30.0
    for _ in range(5):
        second.observe(1e-2)
    merged = LatencyHistogram(window_s=60.0, num_slices=6, clock=lambda: now[0])
    merged.merge(first)
    merged.merge(second)
    assert merged.count == 15
    assert merged.window_summary(60.0)["count"] == 15
    # Advance past the first batch's slice: only the second remains.
    now[0] = 65.0
    assert first.window_summary(60.0)["count"] == 0
    assert second.window_summary(60.0)["count"] == 5
    # Cumulative totals never expire.
    assert first.count == 10 and second.count == 5


def test_registry_kind_collision():
    registry = MetricsRegistry()
    registry.counter("service.queries")
    with pytest.raises(ValueError):
        registry.histogram("service.queries")
    registry.histogram("service.latency")
    with pytest.raises(ValueError):
        registry.counter("service.latency")


def test_registry_as_dict_nests():
    registry = MetricsRegistry()
    registry.counter("a.b.c").increment(2)
    registry.counter("a.b.d").increment()
    assert registry.as_dict()["a"]["b"] == {"c": 2, "d": 1}


def test_render_text_is_two_tokens_per_line():
    registry = MetricsRegistry()
    registry.counter("index.O'Reach.route certain").increment(3)
    registry.histogram("latency.cache").observe(1e-3)
    for line in registry.render_text().strip().splitlines():
        tokens = line.split()
        assert len(tokens) == 2, line
        name = tokens[0]
        assert all(c.isalnum() or c == "_" for c in name), name
    assert "index_O_Reach_route_certain 3" in registry.render_text()


# -- bench provenance ------------------------------------------------------
def test_provenance_fields():
    stamp = provenance()
    assert set(stamp) == {"git_sha", "python", "platform", "date", "backend"}
    assert stamp["backend"] in ("python", "numpy")
    assert stamp["git_sha"]  # a sha in a checkout, "unknown" elsewhere
    assert stamp["date"].endswith("Z")


def test_emit_stamps_provenance(tmp_path):
    target = emit("obs_smoke", {"rows": []}, tmp_path / "BENCH_obs_smoke.json")
    document = json.loads(target.read_text())
    assert document["bench"] == "obs_smoke"
    assert document["provenance"]["python"] == document["python"]
    assert len(document["provenance"]["git_sha"]) in (7, 40) or (
        document["provenance"]["git_sha"] == "unknown"
    )
