"""Crash-recovery matrix: SIGKILL a live ``repro serve --wal-dir`` at
seeded points and verify the restart resumes at the exact acknowledged
state.

Each scenario starts the real CLI server in a subprocess, drives
acknowledged writes over HTTP (edge batches from ``update_stream`` plus
authz tuple writes), SIGKILLs the process — including mid-stream with a
chaos ``wal.append=corrupt`` fault tearing a write — restarts it over
the same WAL directory, and then differentially verifies:

- the recovered epoch equals the last acknowledged epoch (an unacked,
  torn write never surfaces);
- recovered reachability answers match a BFS oracle replay of exactly
  the acknowledged batches;
- a zookie issued before the crash still validates after it, and the
  next write advances monotonically past it.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.graphs.digraph import DiGraph
from repro.graphs.generators import gnp_digraph
from repro.graphs.io import read_edge_list
from repro.traversal.online import bfs_reachable
from repro.workloads.updates import update_stream

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


def _write_edgelist(graph: DiGraph, path: Path) -> None:
    with open(path, "w") as sink:
        for source in range(graph.num_vertices):
            for target in graph.out_neighbors(source):
                sink.write(f"{source} {target}\n")


class _Server:
    """One ``repro serve`` subprocess bound to a WAL directory."""

    def __init__(self, edgelist: Path, wal_dir: Path, extra: list[str] = ()):
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                str(edgelist),
                "--index",
                "TC",
                "--port",
                "0",
                "--wal-dir",
                str(wal_dir),
                "--wal-fsync",
                "batch",
                "--authz",
                *extra,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,  # request logging would fill the pipe
            env=env,
            text=True,
        )
        self.port = None
        deadline = time.monotonic() + 30
        for line in self.process.stdout:
            if "http://" in line and "/reach" in line:
                self.port = int(line.split(":")[2].split("/")[0])
                break
            if time.monotonic() > deadline:
                break
        if self.port is None:
            self.process.kill()
            raise RuntimeError("server did not print its address")

    def kill(self) -> None:
        self.process.send_signal(signal.SIGKILL)
        self.process.wait(timeout=10)

    def get(self, path: str) -> dict:
        url = f"http://127.0.0.1:{self.port}{path}"
        with urllib.request.urlopen(url, timeout=10) as response:
            return json.loads(response.read())

    def post(self, path: str, payload: dict) -> tuple[int, dict]:
        request = urllib.request.Request(
            f"http://127.0.0.1:{self.port}{path}",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read() or b"{}")


def _drive_and_crash(tmp_path, kill_after: int, fault: list[str] = ()):
    """Write ``kill_after`` acked batches (or until the WAL poisons),
    SIGKILL, restart, and return everything needed for verification."""
    edgelist = tmp_path / "edges.txt"
    _write_edgelist(gnp_digraph(30, 0.08, seed=404), edgelist)
    # read_edge_list renumbers vertices by first appearance — build the
    # oracle from the same file the server reads so ids line up.
    graph, _ids = read_edge_list(edgelist)
    wal_dir = tmp_path / "wal"

    oracle = graph.copy()
    acked_epoch = 0
    zookie = None

    server = _Server(edgelist, wal_dir, extra=list(fault))
    try:
        ops = update_stream(graph, num_ops=60, seed=11, delete_fraction=0.3)
        batch: list = []
        acked_batches = 0
        for op in ops:
            if acked_batches >= kill_after:
                break
            batch.append(op)
            if len(batch) < 2:
                continue
            payload = {
                "ops": [
                    {"kind": o.kind, "source": o.source, "target": o.target}
                    for o in batch
                ]
            }
            status, body = server.post("/update", payload)
            if status == 200:
                for o in batch:
                    if o.kind == "insert":
                        oracle.add_edge(o.source, o.target)
                    else:
                        oracle.remove_edge(o.source, o.target)
                acked_epoch = body["epoch"]
                acked_batches += 1
            batch = []
        status, body = server.post(
            "/authz/write",
            {"namespace": "acl", "writes": ["user:a#member@group:g"]},
        )
        if status == 200:
            zookie = body["zookie"]
    finally:
        server.kill()
    return graph, edgelist, wal_dir, oracle, acked_epoch, zookie


def _verify_recovery(edgelist, wal_dir, oracle, acked_epoch, zookie, graph):
    server = _Server(edgelist, wal_dir)
    try:
        ready = server.get("/readyz")
        # Kills land between requests, so recovery resumes at exactly
        # the last acknowledged epoch — zero acked epochs lost.
        assert ready["epoch"] == acked_epoch
        assert "wal" in ready and not ready["wal"]["poisoned"]
        # Differential check against a BFS oracle replay of the acked
        # batches: sample a deterministic spread of pairs.
        n = oracle.num_vertices
        for source in range(0, n, 3):
            for target in range(1, n, 7):
                body = server.get(f"/reach?source={source}&target={target}")
                assert body["reachable"] == bfs_reachable(
                    oracle, source, target
                ), f"recovered answer diverges for {source}->{target}"
        if zookie is not None:
            # The pre-crash token validates at the recovered epoch...
            status, body = server.post(
                "/authz/check",
                {
                    "namespace": "acl",
                    "subject": "user:a",
                    "object": "group:g",
                    "at_least": zookie,
                },
            )
            assert status == 200
            assert body["allowed"]
            # ...and the next write advances monotonically past it.
            status, body = server.post(
                "/authz/write",
                {"namespace": "acl", "writes": ["user:b#member@group:g"]},
            )
            assert status == 200
            assert body["epoch"] > int(zookie.split(".")[2])
    finally:
        server.kill()


@pytest.mark.parametrize("kill_after", [0, 3, 9])
def test_sigkill_between_writes_recovers_exact_epoch(tmp_path, kill_after):
    graph, edgelist, wal_dir, oracle, acked_epoch, zookie = _drive_and_crash(
        tmp_path, kill_after
    )
    assert acked_epoch == kill_after  # every batch was acknowledged
    _verify_recovery(edgelist, wal_dir, oracle, acked_epoch, zookie, graph)


def test_sigkill_after_chaos_torn_append_loses_nothing_acked(tmp_path):
    """A seeded ``wal.append=corrupt`` fault tears a write mid-append:
    that write is refused (typed 5xx, never acked) and the log poisons
    fail-stop; after SIGKILL + restart the torn tail is truncated and
    the state matches exactly the acknowledged prefix."""
    graph, edgelist, wal_dir, oracle, acked_epoch, zookie = _drive_and_crash(
        tmp_path,
        kill_after=20,
        fault=["--fault", "wal.append=corrupt:0.25", "--chaos-seed", "5"],
    )
    # With probability 0.25 per append and ~30 attempts, a tear happened
    # long before 20 acks; after it nothing further is acknowledged.
    assert acked_epoch < 20
    _verify_recovery(edgelist, wal_dir, oracle, acked_epoch, zookie, graph)


def test_second_generation_crash_still_recovers(tmp_path):
    """Crash, recover, write more, crash again — epochs stay monotone
    across restarts and the final recovery reflects both generations."""
    graph, edgelist, wal_dir, oracle, acked_epoch, zookie = _drive_and_crash(
        tmp_path, kill_after=3
    )
    server = _Server(edgelist, wal_dir)
    try:
        assert server.get("/readyz")["epoch"] == acked_epoch
        kind = "delete" if oracle.has_edge(0, 29) else "insert"
        status, body = server.post(
            "/update",
            {"ops": [{"kind": kind, "source": 0, "target": 29}]},
        )
        assert status == 200
        assert body["epoch"] == acked_epoch + 1
        if kind == "insert":
            oracle.add_edge(0, 29)
        else:
            oracle.remove_edge(0, 29)
        acked_epoch = body["epoch"]
    finally:
        server.kill()
    _verify_recovery(edgelist, wal_dir, oracle, acked_epoch, zookie, graph)
