"""End-to-end tests for the JSON-over-HTTP service front door."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.graphs.generators import random_dag, random_labeled_digraph
from repro.service import ReachabilityService
from repro.service.server import serve
from repro.traversal.online import bfs_reachable
from repro.traversal.rpq import rpq_reachable


@pytest.fixture
def labeled_server():
    graph = random_labeled_digraph(15, 40, ["a", "b"], seed=701)
    service = ReachabilityService(graph)
    server = serve(service, port=0)  # port 0: let the OS pick a free one
    server.start_background()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", graph, service
    server.shutdown()
    server.server_close()


def _get(url: str) -> tuple[int, dict]:
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read())


def _post(url: str, payload: dict) -> tuple[int, dict]:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


class TestRoutes:
    def test_healthz_is_pure_liveness(self, labeled_server):
        base, _graph, _service = labeled_server
        status, body = _get(f"{base}/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["uptime_s"] >= 0
        # Liveness carries no readiness detail — that moved to /readyz.
        assert "epoch" not in body

    def test_readyz_reports_serving_state(self, labeled_server):
        base, _graph, service = labeled_server
        status, body = _get(f"{base}/readyz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["epoch"] == 0
        assert body["in_flight"] == 0
        assert body["index"] == service.index_name
        assert body["mode"] == "labeled"
        assert body["uptime_s"] >= 0

    def test_reach_matches_oracle(self, labeled_server):
        base, graph, _service = labeled_server
        plain = graph.to_plain()
        for source, target in [(0, 5), (3, 9), (14, 2)]:
            status, body = _get(f"{base}/reach?source={source}&target={target}")
            assert status == 200
            assert body["reachable"] == bfs_reachable(plain, source, target)
            assert body["epoch"] == 0
            assert body["route"] in ("cache", "plain_index")

    def test_lreach_matches_oracle(self, labeled_server):
        base, graph, _service = labeled_server
        constraint = "(a | b)*"
        status, body = _get(
            f"{base}/lreach?source=0&target=7&constraint=(a%20|%20b)*"
        )
        assert status == 200
        assert body["reachable"] == rpq_reachable(graph, 0, 7, constraint)
        assert body["route"] == "labeled_index"

    def test_update_bumps_epoch_and_changes_answers(self, labeled_server):
        base, graph, service = labeled_server
        # Find a missing edge and insert it over HTTP.
        n = graph.num_vertices
        missing = next(
            (u, v)
            for u in range(n)
            for v in range(n)
            if u != v and not graph.has_edge(u, v, "a")
        )
        status, body = _post(
            f"{base}/update",
            {
                "ops": [
                    {
                        "kind": "insert",
                        "source": missing[0],
                        "target": missing[1],
                        "label": "a",
                    }
                ]
            },
        )
        assert status == 200
        assert body == {"epoch": 1, "applied": 1}
        status, reach = _get(
            f"{base}/reach?source={missing[0]}&target={missing[1]}"
        )
        assert status == 200
        assert reach["reachable"] is True
        assert reach["epoch"] == 1
        assert service.epoch == 1

    def test_metrics_text_and_json(self, labeled_server):
        base, _graph, _service = labeled_server
        _get(f"{base}/reach?source=0&target=1")
        with urllib.request.urlopen(f"{base}/metrics", timeout=10) as response:
            text = response.read().decode()
        assert "service_epoch 0" in text
        assert "cache_hits" in text
        status, body = _get(f"{base}/metrics?format=json")
        assert status == 200
        assert body["service"]["epoch"] == 0
        assert "cache" in body

    def test_metrics_openmetrics(self, labeled_server):
        base, _graph, _service = labeled_server
        _get(f"{base}/reach?source=0&target=1")
        with urllib.request.urlopen(
            f"{base}/metrics?format=openmetrics", timeout=10
        ) as response:
            assert response.headers["Content-Type"].startswith(
                "application/openmetrics-text"
            )
            text = response.read().decode()
        from repro.slo import validate_openmetrics

        stats = validate_openmetrics(text)
        assert stats["families"] > 0 and stats["samples"] > 0
        assert "repro_service_epoch" in text
        assert 'repro_service_queries_total{' in text
        assert text.endswith("# EOF\n")

    def test_slo_endpoint_without_tracker(self, labeled_server):
        base, _graph, service = labeled_server
        _get(f"{base}/reach?source=0&target=1")
        status, body = _get(f"{base}/slo")
        assert status == 200
        assert body["epoch"] == 0
        assert body["index"] == service.index_name
        assert body["draining"] is False
        assert body["slo"] is None  # no tracker attached to this server
        assert body["audit"] is None
        assert body["queries_total"] >= 1

    def test_readyz_503_while_draining(self):
        service = ReachabilityService(random_dag(10, 20, seed=703))
        server = serve(service, port=0)
        server.start_background()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            server.admission.start_draining()
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"{base}/readyz")
            assert excinfo.value.code == 503
            assert json.loads(excinfo.value.read())["status"] == "draining"
            # Liveness must stay green while draining: a restart probe
            # that killed the process here would defeat graceful shutdown.
            status, body = _get(f"{base}/healthz")
            assert status == 200
            assert body["status"] == "ok"
        finally:
            server.shutdown()
            server.server_close()


class TestBatchRoute:
    PAIRS = [[0, 5], [3, 9], [9, 3], [2, 2], [0, 5]]

    def test_uncached_then_cached_reconcile_with_metrics(self, labeled_server):
        base, graph, _service = labeled_server
        plain = graph.to_plain()
        expected = [bfs_reachable(plain, s, t) for s, t in self.PAIRS]

        status, cold = _post(f"{base}/reach/batch", {"pairs": self.PAIRS})
        assert status == 200
        assert cold["count"] == len(self.PAIRS)
        assert cold["epoch"] == 0
        assert [r["reachable"] for r in cold["results"]] == expected
        assert all(r["route"] == "plain_index" for r in cold["results"])

        status, warm = _post(f"{base}/reach/batch", {"pairs": self.PAIRS})
        assert [r["reachable"] for r in warm["results"]] == expected
        assert all(r["route"] == "cache" for r in warm["results"])

        _status, metrics = _get(f"{base}/metrics?format=json")
        batch = metrics["service"]["batch"]
        assert batch["requests"] == 2
        assert batch["pairs"] == 2 * len(self.PAIRS)
        assert batch["cache_hits"] == len(self.PAIRS)
        assert batch["computed"] == len({tuple(p) for p in self.PAIRS})

    def test_empty_batch(self, labeled_server):
        base, _graph, _service = labeled_server
        status, body = _post(f"{base}/reach/batch", {"pairs": []})
        assert status == 200
        assert body == {"epoch": 0, "count": 0, "results": []}

    def test_malformed_pairs_400(self, labeled_server):
        base, _graph, _service = labeled_server
        for payload in ({}, {"pairs": [[1]]}, {"pairs": [["a", "b"]]}, {"pairs": 3}):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(f"{base}/reach/batch", payload)
            assert excinfo.value.code == 400

    def test_out_of_range_pair_400(self, labeled_server):
        base, _graph, _service = labeled_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"{base}/reach/batch", {"pairs": [[0, 999]]})
        assert excinfo.value.code == 400


class TestErrorHandling:
    def test_unknown_path_404(self, labeled_server):
        base, _graph, _service = labeled_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{base}/nope")
        assert excinfo.value.code == 404

    def test_missing_params_400(self, labeled_server):
        base, _graph, _service = labeled_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{base}/reach?source=0")
        assert excinfo.value.code == 400
        assert "target" in json.loads(excinfo.value.read())["error"]

    def test_out_of_range_vertex_400(self, labeled_server):
        base, _graph, _service = labeled_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{base}/reach?source=0&target=999")
        assert excinfo.value.code == 400

    def test_bad_update_body_400(self, labeled_server):
        base, _graph, _service = labeled_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"{base}/update", {"ops": [{"kind": "explode"}]})
        assert excinfo.value.code == 400

    def test_lreach_on_plain_service_400(self):
        service = ReachabilityService(random_dag(10, 20, seed=702))
        server = serve(service, port=0)
        server.start_background()
        host, port = server.server_address[:2]
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"http://{host}:{port}/lreach?source=0&target=1&constraint=(a)*")
            assert excinfo.value.code == 400
        finally:
            server.shutdown()
            server.server_close()
