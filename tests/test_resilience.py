"""Tests for the resilience layer: deadlines, breaker, retry, admission.

The chaos-matrix tests (every injected failure → typed outcome) live in
``test_chaos.py``; this file covers the primitives and their integration
with the engine and the HTTP front door.
"""

from __future__ import annotations

import json
import random
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import DeadlineExceeded, ServiceOverloadedError
from repro.graphs.generators import random_dag
from repro.resilience import (
    CircuitBreaker,
    Deadline,
    current_deadline,
    deadline_scope,
    remaining_ms,
    retry_call,
)
from repro.service import AdmissionController, ReachabilityService
from repro.service.server import serve
from repro.traversal.online import bfs_reachable


# -- deadline primitives -------------------------------------------------
class TestDeadline:
    def test_no_scope_no_deadline(self):
        assert current_deadline() is None
        assert remaining_ms() is None

    def test_none_timeout_is_passthrough(self):
        with deadline_scope(None) as deadline:
            assert deadline is None
            assert current_deadline() is None

    def test_scope_installs_and_restores(self):
        with deadline_scope(1000.0) as deadline:
            assert current_deadline() is deadline
            assert 0 < remaining_ms() <= 1000.0
        assert current_deadline() is None

    def test_expired_check_raises_typed(self):
        with deadline_scope(0.0) as deadline:
            with pytest.raises(DeadlineExceeded, match="budget 0.0ms"):
                deadline.check()

    def test_nested_scope_keeps_tighter(self):
        with deadline_scope(10_000.0) as outer:
            with deadline_scope(5.0) as inner:
                assert inner is not outer
                assert current_deadline() is inner
            # An inner scope never *extends* the outer budget.
            with deadline_scope(60_000.0) as widened:
                assert widened is outer
            assert current_deadline() is outer

    def test_deadline_is_thread_local(self):
        seen: list[object] = []

        def probe() -> None:
            seen.append(current_deadline())

        with deadline_scope(1000.0):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen == [None]

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            Deadline()
        with pytest.raises(ValueError):
            Deadline(timeout_ms=1, expires_at=1.0)
        with pytest.raises(ValueError):
            Deadline(timeout_ms=-1)


class TestDeadlineInTraversal:
    def test_bfs_aborts_on_expired_deadline(self):
        graph = random_dag(5000, 20000, seed=13)
        with deadline_scope(0.0):
            with pytest.raises(DeadlineExceeded):
                bfs_reachable(graph, 0, 1)

    def test_no_deadline_answers_exactly(self):
        graph = random_dag(200, 600, seed=14)
        # Same call, no scope: must stay exact (strictly additive).
        assert bfs_reachable(graph, 0, 0) is True

    def test_kernel_batch_aborts(self):
        from repro.kernels.bitbfs import batch_reachable

        graph = random_dag(2000, 8000, seed=15)
        pairs = [(s, (s * 7) % 2000) for s in range(100)]
        with deadline_scope(0.0):
            with pytest.raises(DeadlineExceeded):
                batch_reachable(graph, pairs)

    def test_sharded_query_batch_aborts(self):
        from repro.shard import ShardedIndex

        graph = random_dag(300, 900, seed=16)
        index = ShardedIndex.build(graph, family="PLL", num_shards=3)
        with deadline_scope(0.0):
            with pytest.raises(DeadlineExceeded):
                index.query_batch([(0, 250), (1, 200)])

    def test_deadline_hammer_overshoot_bounded(self):
        """p100 overshoot past the budget stays bounded by the stride."""
        graph = random_dag(3000, 12000, seed=17)
        budget_ms = 2.0
        worst_overshoot = 0.0
        for trial in range(20):
            start = time.perf_counter()
            with deadline_scope(budget_ms):
                try:
                    for source in range(0, 3000, 100):
                        bfs_reachable(graph, source, (source + 1500) % 3000)
                except DeadlineExceeded:
                    pass
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            worst_overshoot = max(worst_overshoot, elapsed_ms - budget_ms)
        # The stride bounds overshoot to ~256 visits of pure-python BFS
        # plus scheduler noise; 250ms is far above that but far below an
        # unchecked full sweep.
        assert worst_overshoot < 250.0


# -- circuit breaker -----------------------------------------------------
class TestCircuitBreaker:
    def test_closed_allows(self):
        breaker = CircuitBreaker(failure_threshold=3)
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=60.0)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_single_probe_then_close(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=0.0)
        breaker.record_failure()
        assert breaker.state == "open"
        # Cooldown of zero: next allow() becomes the half-open probe.
        assert breaker.allow()
        assert breaker.state == "half_open"
        assert not breaker.allow()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=5, cooldown_s=0.0)
        for _ in range(5):
            breaker.record_failure()
        assert breaker.allow()  # the probe
        breaker.record_failure()  # probe failed: straight back to open
        assert breaker.state == "open"

    def test_snapshot_shape(self):
        breaker = CircuitBreaker(name="idx", failure_threshold=4)
        snap = breaker.snapshot()
        assert snap["name"] == "idx"
        assert snap["state"] == "closed"
        assert snap["failure_threshold"] == 4


# -- retry ---------------------------------------------------------------
class TestRetry:
    def test_first_try_success_is_one_attempt(self):
        result, attempts = retry_call(lambda: 42, attempts=3)
        assert (result, attempts) == (42, 1)

    def test_retries_transient_failures(self):
        calls = {"n": 0}

        def flaky() -> str:
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        result, attempts = retry_call(
            flaky, attempts=3, base_delay_s=0.0, rng=random.Random(1)
        )
        assert (result, attempts) == ("ok", 3)

    def test_exhausted_attempts_propagate_last_error(self):
        def always() -> None:
            raise OSError("permanent")

        with pytest.raises(OSError, match="permanent"):
            retry_call(always, attempts=2, base_delay_s=0.0, rng=random.Random(2))

    def test_retry_on_filters_exception_types(self):
        def wrong_kind() -> None:
            raise KeyError("not retryable")

        with pytest.raises(KeyError):
            retry_call(
                wrong_kind,
                attempts=5,
                base_delay_s=0.0,
                retry_on=(OSError,),
                rng=random.Random(3),
            )

    def test_on_retry_callback_sees_each_failure(self):
        seen: list[tuple[int, str]] = []

        def flaky() -> int:
            if len(seen) < 2:
                raise ValueError(f"boom{len(seen)}")
            return 7

        retry_call(
            flaky,
            attempts=3,
            base_delay_s=0.0,
            rng=random.Random(4),
            on_retry=lambda attempt, exc: seen.append((attempt, str(exc))),
        )
        assert seen == [(1, "boom0"), (2, "boom1")]


# -- shard build retry ---------------------------------------------------
class TestShardBuildRetry:
    def test_report_attempts_all_ones_without_faults(self):
        from repro.shard import ShardedIndex

        graph = random_dag(120, 360, seed=18)
        index = ShardedIndex.build(graph, family="PLL", num_shards=3)
        report = index.shard_build_report
        assert report.shard_attempts == (1,) * len(report.shard_sizes)
        assert "attempts" not in report.render_text()

    def test_transient_worker_death_retries(self):
        from repro.resilience import ChaosPolicy, Fault, chaos
        from repro.shard import ShardedIndex

        graph = random_dag(120, 360, seed=19)
        policy = ChaosPolicy(
            [Fault(point="shard.build_worker", kind="error", times=1)], seed=5
        )
        with chaos(policy):
            index = ShardedIndex.build(
                graph, family="PLL", num_shards=2, executor="thread"
            )
        attempts = index.shard_build_report.shard_attempts
        assert sorted(attempts) == [1, 2]  # one shard needed a second try
        assert "attempts" in index.shard_build_report.render_text()


# -- admission control ---------------------------------------------------
class TestAdmissionController:
    def test_admits_within_bounds(self):
        controller = AdmissionController(max_concurrent=2, queue_depth=0)
        with controller.admit():
            assert controller.in_flight == 1
        assert controller.in_flight == 0

    def test_sheds_when_saturated(self):
        controller = AdmissionController(
            max_concurrent=1, queue_depth=0, queue_timeout_s=0.0
        )
        held = controller.admit()
        with pytest.raises(ServiceOverloadedError) as info:
            controller.admit()
        assert info.value.retry_after_s > 0
        held.release()
        with controller.admit():  # capacity returns after release
            pass

    def test_queue_timeout_sheds(self):
        controller = AdmissionController(
            max_concurrent=1, queue_depth=4, queue_timeout_s=0.02
        )
        held = controller.admit()
        start = time.perf_counter()
        with pytest.raises(ServiceOverloadedError, match="no capacity"):
            controller.admit()
        assert time.perf_counter() - start < 1.0
        held.release()

    def test_queued_request_proceeds_when_slot_frees(self):
        controller = AdmissionController(
            max_concurrent=1, queue_depth=4, queue_timeout_s=2.0
        )
        held = controller.admit()
        outcome: list[str] = []

        def waiter() -> None:
            try:
                with controller.admit():
                    outcome.append("admitted")
            except ServiceOverloadedError:
                outcome.append("shed")

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        held.release()
        thread.join(timeout=5)
        assert outcome == ["admitted"]

    def test_draining_refuses_new_work(self):
        controller = AdmissionController(max_concurrent=4)
        controller.start_draining()
        with pytest.raises(ServiceOverloadedError, match="draining"):
            controller.admit()

    def test_wait_drained(self):
        controller = AdmissionController(max_concurrent=4)
        held = controller.admit()
        assert controller.wait_drained(timeout_s=0.02) is False
        held.release()
        assert controller.wait_drained(timeout_s=1.0) is True


# -- engine degradation --------------------------------------------------
class TestEngineDegradation:
    def test_deadline_abort_is_unknown_and_uncached(self):
        # A long chain: guided traversal must walk every vertex, so the
        # strided deadline check is guaranteed to fire.
        from repro.graphs.digraph import DiGraph

        graph = DiGraph(5000)
        for vertex in range(4999):
            graph.add_edge(vertex, vertex + 1)
        service = ReachabilityService(
            graph, index="GRAIL", cache_capacity=4096, coalesce=False
        )
        with deadline_scope(0.0):
            degraded = service.reach_ex(0, 4999)
        assert degraded.route == "deadline_abort"
        assert degraded.answer is None
        assert degraded.status == "UNKNOWN"
        # The UNKNOWN was not cached: the next exact answer is computed.
        exact = service.reach_ex(0, 4999)
        assert exact.route != "cache"
        assert exact.answer is True

    def test_batch_deadline_degrades_to_unknown(self):
        graph = random_dag(2000, 8000, seed=21)
        service = ReachabilityService(graph, index="BFL", cache_capacity=None)
        with deadline_scope(0.0):
            results = service.execute_batch([(0, 1999), (1, 1500)])
        assert [r.status for r in results] == ["UNKNOWN", "UNKNOWN"]
        assert {r.route for r in results} == {"deadline_abort"}

    def test_broken_index_trips_breaker_and_degrades(self):
        graph = random_dag(100, 300, seed=22)
        service = ReachabilityService(
            graph,
            index="PLL",
            cache_capacity=None,
            coalesce=False,
            breaker_threshold=2,
            breaker_cooldown_s=300.0,
        )
        snapshot = service.acquire()
        original = type(snapshot.plain).query
        type(snapshot.plain).query = lambda self, s, t: 1 / 0
        try:
            for _ in range(2):
                result = service.reach_ex(3, 70)
                assert result.route == "degraded"
            assert service.breaker.state == "open"
            # Breaker open: the broken query is no longer even invoked.
            result = service.reach_ex(3, 70)
            assert result.route == "degraded"
        finally:
            type(snapshot.plain).query = original

    def test_degraded_answer_uses_index_certificates(self):
        graph = random_dag(100, 300, seed=23)
        service = ReachabilityService(
            graph, index="PLL", cache_capacity=None, breaker_threshold=1,
            breaker_cooldown_s=300.0,
        )
        service.breaker.record_failure()  # force open
        assert service.breaker.state == "open"
        # PLL is complete: its lookup still yields exact TRUE/FALSE, so
        # degraded answers stay exact for a complete index.
        from repro.traversal.online import bfs_reachable as oracle

        for source, target in [(0, 50), (10, 90), (5, 5)]:
            result = service.reach_ex(source, target)
            assert result.route == "degraded"
            assert result.answer == oracle(graph, source, target)

    def test_explain_reports_degraded_route(self):
        graph = random_dag(50, 150, seed=24)
        service = ReachabilityService(
            graph, index="PLL", cache_capacity=None, breaker_threshold=1,
            breaker_cooldown_s=300.0,
        )
        service.breaker.record_failure()
        explanation = service.explain(0, 30)
        assert explanation.route == "degraded"
        assert "circuit breaker" in " ".join(explanation.details)

    def test_metrics_dict_has_breaker(self):
        graph = random_dag(30, 80, seed=25)
        service = ReachabilityService(graph, index="PLL")
        payload = service.metrics_dict()
        assert payload["breaker"]["state"] == "closed"
        assert payload["breaker"]["name"] == "index:PLL"


# -- HTTP front door -----------------------------------------------------
def _get(url: str, headers: dict[str, str] | None = None):
    request = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, dict(response.headers), json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


@pytest.fixture
def http_service():
    graph = random_dag(60, 180, seed=26)
    service = ReachabilityService(graph, index="PLL")
    admission = AdmissionController(
        max_concurrent=2, queue_depth=0, queue_timeout_s=0.02
    )
    server = serve(service, port=0)
    server.admission = admission
    server.start_background()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", admission, server
    server.shutdown()
    server.server_close()


class TestHTTPResilience:
    def test_payload_has_status_field(self, http_service):
        base, _admission, _server = http_service
        _status, _headers, body = _get(f"{base}/reach?source=0&target=5")
        assert body["status"] in ("TRUE", "FALSE")
        assert body["reachable"] is not None

    def test_timeout_param_accepted(self, http_service):
        base, _admission, _server = http_service
        status, _headers, body = _get(
            f"{base}/reach?source=0&target=5&timeout_ms=5000"
        )
        assert status == 200

    def test_timeout_header_accepted(self, http_service):
        base, _admission, _server = http_service
        status, _headers, _body = _get(
            f"{base}/reach?source=0&target=5", headers={"X-Timeout-Ms": "5000"}
        )
        assert status == 200

    def test_bad_timeout_is_400(self, http_service):
        base, _admission, _server = http_service
        status, _headers, body = _get(f"{base}/reach?source=0&target=5&timeout_ms=x")
        assert status == 400
        assert "timeout_ms" in body["error"]

    def test_saturation_sheds_503_with_retry_after(self, http_service):
        base, admission, _server = http_service
        held = [admission.admit(), admission.admit()]
        try:
            status, headers, body = _get(f"{base}/reach?source=0&target=5")
            assert status == 503
            assert int(headers["Retry-After"]) >= 1
            assert body["retry_after_s"] > 0
        finally:
            for slot in held:
                slot.release()

    def test_health_probes_bypass_admission(self, http_service):
        base, admission, _server = http_service
        held = [admission.admit(), admission.admit()]
        try:
            status, _headers, body = _get(f"{base}/healthz")
            assert status == 200
            assert body["status"] == "ok"
            status, _headers, body = _get(f"{base}/readyz")
            assert status == 200
            assert body["in_flight"] == 2
        finally:
            for slot in held:
                slot.release()

    def test_unexpected_error_is_json_500(self, http_service):
        base, _admission, server = http_service
        snapshot = server.service.acquire()
        original = type(snapshot.plain).lookup  # break below the engine's net
        original_query = type(snapshot.plain).query
        type(snapshot.plain).query = lambda self, s, t: 1 / 0
        type(snapshot.plain).lookup = lambda self, s, t: 1 / 0
        try:
            status, _headers, body = _get(f"{base}/explain?source=0&target=5")
            assert status in (200, 500)
            if status == 500:
                assert "error" in body  # JSON, never a raw traceback
        finally:
            type(snapshot.plain).lookup = original
            type(snapshot.plain).query = original_query


class TestDrain:
    def test_drain_stops_server_and_reports(self):
        graph = random_dag(30, 90, seed=27)
        service = ReachabilityService(graph, index="PLL")
        server = serve(service, port=0)
        server.start_background()
        host, port = server.server_address[:2]
        status, _headers, _body = _get(f"http://{host}:{port}/healthz")
        assert status == 200
        assert server.drain(timeout_s=2.0) is True
        # The listener is closed: connecting now fails fast.
        import socket

        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=1).close()
