"""Index-specific behaviour tests for the path-constrained (§4) families."""

from __future__ import annotations

import pytest

from repro.core.registry import labeled_index
from repro.graphs.generators import random_labeled_digraph
from repro.labeled.gtc import single_source_gtc
from repro.traversal.rpq import constrained_descendants, rpq_reachable

LABELS = ["a", "b", "c"]


@pytest.fixture(scope="module")
def graph():
    return random_labeled_digraph(16, 40, LABELS, seed=85)


class TestSingleSourceGTC:
    def test_rows_match_constrained_bfs(self, graph):
        for source in graph.vertices():
            rows, _cycles = single_source_gtc(graph, source)
            for target, antichain in rows.items():
                for mask in antichain:
                    labels = graph.mask_to_labels(mask)
                    constraint = "(" + "|".join(sorted(map(str, labels))) + ")*"
                    assert rpq_reachable(graph, source, target, constraint)

    def test_rows_are_minimal_antichains(self, graph):
        from repro.labeled.spls import is_subset

        rows, _cycles = single_source_gtc(graph, 0)
        for antichain in rows.values():
            for i, a in enumerate(antichain):
                for j, b in enumerate(antichain):
                    if i != j:
                        assert not is_subset(a, b)

    def test_cycles_are_real_cycles(self, graph):
        for source in graph.vertices():
            _rows, cycles = single_source_gtc(graph, source)
            for mask in cycles:
                labels = graph.mask_to_labels(mask)
                constraint = "(" + "|".join(sorted(map(str, labels))) + ")+"
                assert rpq_reachable(graph, source, source, constraint)


class TestGTCIndex:
    def test_spls_accessor_empty_for_unreachable(self, graph):
        index = labeled_index("GTC").build(graph)
        full = "(" + "|".join(LABELS) + ")*"
        for s in graph.vertices():
            reach = constrained_descendants(graph, s, full)
            for t in graph.vertices():
                if s != t and t not in reach:
                    assert index.spls(s, t) == []


class TestLandmark:
    def test_landmarks_accessor_and_k(self, graph):
        index = labeled_index("Landmark index").build(graph, k=5)
        assert len(index.landmarks) == 5

    def test_k_larger_than_graph_is_clamped(self, graph):
        index = labeled_index("Landmark index").build(graph, k=10_000)
        assert len(index.landmarks) == graph.num_vertices


class TestP2H:
    def test_entries_are_sound(self, graph):
        index = labeled_index("P2H+").build(graph)
        labels = index.labels
        for v in graph.vertices():
            for hop, masks in labels.l_out[v].items():
                for mask in masks:
                    names = sorted(map(str, graph.mask_to_labels(mask)))
                    constraint = "(" + "|".join(names) + ")*"
                    assert rpq_reachable(graph, v, hop, constraint), (v, hop, names)
            for hop, masks in labels.l_in[v].items():
                for mask in masks:
                    names = sorted(map(str, graph.mask_to_labels(mask)))
                    constraint = "(" + "|".join(names) + ")*"
                    assert rpq_reachable(graph, hop, v, constraint)

    def test_entries_are_minimal_antichains(self, graph):
        from repro.labeled.spls import is_subset

        index = labeled_index("P2H+").build(graph)
        for side in (index.labels.l_in, index.labels.l_out):
            for per_vertex in side:
                for antichain in per_vertex.values():
                    for i, a in enumerate(antichain):
                        for j, b in enumerate(antichain):
                            if i != j:
                                assert not is_subset(a, b)

    def test_smaller_than_gtc(self, graph):
        """The 2-hop framework's entire point: shared middle hops."""
        p2h = labeled_index("P2H+").build(graph)
        gtc = labeled_index("GTC").build(graph)
        assert p2h.size_in_entries() < gtc.size_in_entries()


class TestJin:
    def test_tree_path_mask_matches_actual_labels(self, graph):
        index = labeled_index("Jin et al.").build(graph)
        # walk the recorded spanning structure via root counts: for every
        # subtree pair, the mask must equal the labels on the tree path
        for s in graph.vertices():
            for t in graph.vertices():
                if s != t and index._in_subtree(s, t):
                    mask = index._tree_path_mask(s, t)
                    names = sorted(map(str, graph.mask_to_labels(mask)))
                    constraint = "(" + "|".join(names) + ")*" if names else None
                    if constraint:
                        assert rpq_reachable(graph, s, t, constraint)


class TestRLCSpecific:
    def test_max_period_accessor(self, graph):
        index = labeled_index("RLC").build(graph, max_period=2)
        assert index.max_period == 2

    def test_entries_count_positive(self, graph):
        index = labeled_index("RLC").build(graph, max_period=2)
        assert index.size_in_entries() > 0


class TestZou:
    def test_lazy_rows_rebuilt_after_invalidation(self, graph):
        index = labeled_index("Zou et al.").build(graph.copy())
        g = index.graph
        # pick any absent edge and insert it
        inserted = None
        for u in g.vertices():
            for v in g.vertices():
                if u != v and not g.has_edge(u, v, "a"):
                    index.insert_edge(u, v, "a")
                    inserted = (u, v)
                    break
            if inserted:
                break
        assert inserted is not None
        u, v = inserted
        assert index.query(u, v, "(a)*")


class TestPortalDecomposition:
    def test_portals_identified(self):
        from repro.graphs.labeled import LabeledDiGraph
        from repro.labeled.zou import scc_portals

        # one 3-cycle SCC entered at 0 and left at 2, plus endpoints
        graph = LabeledDiGraph(
            5,
            [
                (3, 0, "a"),  # enters the SCC at 0
                (0, 1, "b"),
                (1, 2, "a"),
                (2, 0, "b"),
                (2, 4, "a"),  # leaves the SCC at 2
            ],
        )
        decomposition = scc_portals(graph)
        scc = next(i for i, m in enumerate(decomposition.members) if len(m) == 3)
        assert decomposition.in_portals[scc] == [0]
        assert decomposition.out_portals[scc] == [2]
        antichain = decomposition.spls[scc][(0, 2)]
        # the only 0 -> 2 path inside the SCC uses labels {a, b}
        mask_ab = graph.label_set_mask(["a", "b"])
        assert antichain == [mask_ab]

    def test_portal_spls_sound(self, graph):
        from repro.labeled.zou import scc_portals
        from repro.traversal.rpq import rpq_reachable

        decomposition = scc_portals(graph)
        for comp_id, rows in enumerate(decomposition.spls):
            for (source, target), antichain in rows.items():
                for mask in antichain:
                    names = sorted(map(str, graph.mask_to_labels(mask)))
                    constraint = "(" + "|".join(names) + ")"
                    constraint += "+" if source == target else "*"
                    assert rpq_reachable(graph, source, target, constraint)
