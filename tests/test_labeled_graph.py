"""Unit tests for the edge-labeled graph substrate."""

from __future__ import annotations

import pytest

from repro.errors import EdgeError, VertexError
from repro.graphs.labeled import LabeledDiGraph


class TestLabels:
    def test_labels_interned_in_first_seen_order(self):
        graph = LabeledDiGraph(3, [(0, 1, "x"), (1, 2, "y"), (0, 2, "x")])
        assert graph.labels() == ["x", "y"]
        assert graph.label_id("x") == 0
        assert graph.label_id("y") == 1
        assert graph.label_name(1) == "y"
        assert graph.num_labels == 2

    def test_unknown_label_raises(self):
        graph = LabeledDiGraph(1)
        with pytest.raises(KeyError):
            graph.label_id("missing")

    def test_mask_round_trip(self):
        graph = LabeledDiGraph(2, [(0, 1, "a"), (1, 0, "b")])
        mask = graph.label_set_mask(["a", "b"])
        assert mask == 0b11
        assert graph.mask_to_labels(mask) == {"a", "b"}
        assert graph.mask_to_labels(0) == set()

    def test_intern_label_is_idempotent(self):
        graph = LabeledDiGraph(1)
        first = graph.intern_label("z")
        assert graph.intern_label("z") == first


class TestEdges:
    def test_parallel_edges_different_labels_allowed(self):
        graph = LabeledDiGraph(2)
        graph.add_edge(0, 1, "a")
        graph.add_edge(0, 1, "b")
        assert graph.num_edges == 2
        assert graph.has_edge(0, 1, "a")
        assert graph.has_edge(0, 1, "b")

    def test_duplicate_labeled_edge_rejected(self):
        graph = LabeledDiGraph(2, [(0, 1, "a")])
        with pytest.raises(EdgeError):
            graph.add_edge(0, 1, "a")

    def test_remove_edge(self):
        graph = LabeledDiGraph(2, [(0, 1, "a")])
        graph.remove_edge(0, 1, "a")
        assert graph.num_edges == 0
        with pytest.raises(EdgeError):
            graph.remove_edge(0, 1, "a")

    def test_out_in_edges_symmetry(self):
        graph = LabeledDiGraph(3, [(0, 1, "a"), (2, 1, "b")])
        assert graph.out_edges(0) == [(1, 0)]
        label_ids = {label_id for _u, label_id in graph.in_edges(1)}
        assert label_ids == {0, 1}
        assert graph.in_degree(1) == 2
        assert graph.degree(1) == 2

    def test_vertex_bounds_checked(self):
        graph = LabeledDiGraph(1)
        with pytest.raises(VertexError):
            graph.add_edge(0, 7, "a")
        with pytest.raises(VertexError):
            LabeledDiGraph(-2)


class TestDerived:
    def test_to_plain_collapses_parallel_edges(self):
        graph = LabeledDiGraph(2, [(0, 1, "a"), (0, 1, "b")])
        plain = graph.to_plain()
        assert plain.num_edges == 1
        assert plain.has_edge(0, 1)

    def test_reversed_preserves_labels(self, labeled_graph):
        rev = labeled_graph.reversed()
        assert rev.num_edges == labeled_graph.num_edges
        for u, v, label in labeled_graph.edges():
            assert rev.has_edge(v, u, label)

    def test_copy_is_independent(self, labeled_graph):
        clone = labeled_graph.copy()
        assert clone.num_edges == labeled_graph.num_edges
        assert clone.labels() == labeled_graph.labels()

    def test_repr(self, labeled_graph):
        assert "LabeledDiGraph" in repr(labeled_graph)

    def test_add_vertex(self):
        graph = LabeledDiGraph(1)
        assert graph.add_vertex() == 1
        graph.add_edge(0, 1, "a")
        assert graph.has_edge(0, 1, "a")
