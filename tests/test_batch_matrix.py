"""Differential batch matrix: ``lookup_batch``/``query_batch`` vs scalar.

Every registered plain family must answer a batch exactly as the
equivalent scalar loop would — same TriStates from ``lookup_batch``,
same booleans from ``query_batch`` — on a DAG and (condensed) on a
cyclic graph, including empty batches, duplicate pairs and self-pairs.
"""

from __future__ import annotations

import pytest

from repro.core.base import TriState
from repro.core.condensed import CondensedIndex
from repro.core.registry import all_plain_indexes
from repro.errors import QueryError
from repro.graphs.generators import gnp_digraph, random_dag
from repro.graphs.topo import is_dag

PLAIN = all_plain_indexes()

GRAPHS = {
    "dag": lambda: random_dag(30, 70, seed=811),
    "cyclic": lambda: gnp_digraph(24, 0.08, seed=812),
}


def _build(name, graph):
    cls = PLAIN[name]
    if cls.metadata.input_kind == "DAG" and not is_dag(graph):
        return CondensedIndex.build(graph, inner=cls)
    return cls.build(graph)


def _pairs(graph):
    n = graph.num_vertices
    pairs = [(s, t) for s in range(0, n, 3) for t in range(0, n, 2)]
    pairs += [(v, v) for v in range(0, n, 5)]  # self-pairs
    pairs += pairs[:7]  # duplicates
    return pairs


@pytest.mark.parametrize("shape", sorted(GRAPHS))
@pytest.mark.parametrize("name", sorted(PLAIN))
def test_lookup_batch_matches_scalar(name, shape):
    graph = GRAPHS[shape]()
    index = _build(name, graph)
    pairs = _pairs(graph)
    batched = index.lookup_batch(pairs)
    scalar = [index.lookup(s, t) for s, t in pairs]
    assert batched == scalar, (name, shape)
    assert all(isinstance(probe, TriState) for probe in batched)


@pytest.mark.parametrize("shape", sorted(GRAPHS))
@pytest.mark.parametrize("name", sorted(PLAIN))
def test_query_batch_matches_scalar(name, shape):
    graph = GRAPHS[shape]()
    index = _build(name, graph)
    pairs = _pairs(graph)
    batched = index.query_batch(pairs)
    scalar = [index.query(s, t) for s, t in pairs]
    assert batched == scalar, (name, shape)
    assert all(isinstance(answer, bool) for answer in batched)


@pytest.mark.parametrize("name", sorted(PLAIN))
def test_empty_batch(name):
    index = _build(name, GRAPHS["dag"]())
    assert index.lookup_batch([]) == []
    assert index.query_batch([]) == []


@pytest.mark.parametrize("name", sorted(PLAIN))
def test_out_of_range_pair_rejected(name):
    index = _build(name, GRAPHS["dag"]())
    with pytest.raises(QueryError):
        index.query_batch([(0, 1), (0, 999)])
    with pytest.raises(QueryError):
        index.lookup_batch([(-1, 0)])
