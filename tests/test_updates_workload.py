"""Tests for the update-stream workload generators."""

from __future__ import annotations

import pytest

from repro.core.registry import plain_index
from repro.graphs.generators import (
    random_dag,
    random_labeled_digraph,
    rmat_digraph,
)
from repro.graphs.topo import is_dag
from repro.traversal.online import bfs_reachable
from repro.workloads.updates import labeled_update_stream, update_stream


class TestUpdateStream:
    def test_replayable_and_consistent(self):
        graph = random_dag(30, 60, seed=1)
        ops = update_stream(graph, 50, seed=2)
        assert len(ops) == 50
        # replaying against a copy never hits duplicates or missing edges
        working = graph.copy()
        for op in ops:
            if op.kind == "insert":
                assert not working.has_edge(op.source, op.target)
                working.add_edge(op.source, op.target)
            else:
                assert working.has_edge(op.source, op.target)
                working.remove_edge(op.source, op.target)

    def test_acyclic_streams_preserve_dagness(self):
        graph = random_dag(30, 60, seed=3)
        ops = update_stream(graph, 60, seed=4, keep_acyclic=True)
        working = graph.copy()
        for op in ops:
            if op.kind == "insert":
                working.add_edge(op.source, op.target)
            else:
                working.remove_edge(op.source, op.target)
            assert is_dag(working)

    def test_insert_only(self):
        graph = random_dag(20, 30, seed=5)
        ops = update_stream(graph, 25, seed=6, delete_fraction=0.0)
        assert all(op.kind == "insert" for op in ops)

    def test_deterministic(self):
        graph = random_dag(20, 30, seed=7)
        assert update_stream(graph, 20, seed=8) == update_stream(graph, 20, seed=8)

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            update_stream(random_dag(5, 5, seed=9), 5, seed=9, delete_fraction=2)

    def test_stream_drives_dynamic_index(self):
        """The generated stream is directly consumable by TOL maintenance."""
        graph = random_dag(25, 50, seed=10)
        ops = update_stream(graph, 30, seed=11, keep_acyclic=True)
        index = plain_index("TOL").build(graph.copy())
        for op in ops:
            if op.kind == "insert":
                index.insert_edge(op.source, op.target)
            else:
                index.delete_edge(op.source, op.target)
        g = index.graph
        for s in range(0, g.num_vertices, 3):
            for t in range(g.num_vertices):
                assert index.query(s, t) == bfs_reachable(g, s, t)


class TestLabeledUpdateStream:
    def test_replayable(self):
        graph = random_labeled_digraph(15, 35, ["a", "b"], seed=12)
        ops = labeled_update_stream(graph, 30, seed=13)
        working = graph.copy()
        for op in ops:
            if op.kind == "insert":
                working.add_edge(op.source, op.target, op.label)
            else:
                working.remove_edge(op.source, op.target, op.label)

    def test_requires_labels(self):
        from repro.graphs.labeled import LabeledDiGraph

        with pytest.raises(ValueError):
            labeled_update_stream(LabeledDiGraph(3), 5, seed=14)


class TestRMAT:
    def test_size_and_determinism(self):
        g = rmat_digraph(7, 300, seed=15)
        assert g.num_vertices == 128
        assert g.num_edges == 300
        assert g == rmat_digraph(7, 300, seed=15)

    def test_degree_skew(self):
        g = rmat_digraph(9, 2000, seed=16)
        degrees = sorted((g.in_degree(v) for v in g.vertices()), reverse=True)
        assert degrees[0] >= 5 * max(1, degrees[len(degrees) // 2])

    def test_probability_validation(self):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            rmat_digraph(4, 10, seed=17, a=0.9, b=0.9, c=0.9)

    def test_too_many_edges(self):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            rmat_digraph(2, 1000, seed=18)

    def test_indexable(self):
        """R-MAT graphs (cyclic) work through the general-input indexes."""
        g = rmat_digraph(6, 150, seed=19)
        index = plain_index("PLL").build(g)
        for s in range(0, g.num_vertices, 7):
            for t in range(0, g.num_vertices, 7):
                assert index.query(s, t) == bfs_reachable(g, s, t)
