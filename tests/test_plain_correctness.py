"""Every plain index answers exactly like BFS, on DAGs and general graphs.

This is the central correctness suite: all 25 Table 1 indexes are built on
seeded random DAGs (and, via SCC condensation where needed, on cyclic
graphs) and checked pair-by-pair against online traversal.
"""

from __future__ import annotations

import pytest

from repro.core.condensed import CondensedIndex
from repro.core.registry import all_plain_indexes
from repro.errors import NotADAGError
from repro.graphs.generators import cyclic_communities, random_dag, tree_with_shortcuts
from repro.traversal.online import bfs_reachable

PLAIN = all_plain_indexes()
DAG_ONLY = sorted(n for n, c in PLAIN.items() if c.metadata.input_kind == "DAG")
GENERAL = sorted(n for n, c in PLAIN.items() if c.metadata.input_kind == "General")


def _assert_matches_bfs(index, graph, pairs):
    for s, t in pairs:
        expected = bfs_reachable(graph, s, t)
        assert index.query(s, t) == expected, (s, t, expected)


def _all_pairs(graph, stride=1):
    n = graph.num_vertices
    return [(s, t) for s in range(n) for t in range(0, n, stride)]


@pytest.mark.parametrize("name", sorted(PLAIN))
class TestOnRandomDag:
    def test_exact_on_dag(self, name):
        graph = random_dag(45, 110, seed=3)
        index = PLAIN[name].build(graph)
        _assert_matches_bfs(index, graph, _all_pairs(graph))

    def test_exact_on_sparse_tree_like_dag(self, name):
        graph = tree_with_shortcuts(40, 8, seed=4)
        index = PLAIN[name].build(graph)
        _assert_matches_bfs(index, graph, _all_pairs(graph))

    def test_self_queries_true(self, name):
        graph = random_dag(20, 40, seed=5)
        index = PLAIN[name].build(graph)
        for v in graph.vertices():
            assert index.query(v, v)

    def test_empty_graph(self, name):
        from repro.graphs.digraph import DiGraph

        graph = DiGraph(3)
        index = PLAIN[name].build(graph)
        assert index.query(0, 0)
        assert not index.query(0, 2)


@pytest.mark.parametrize("name", GENERAL)
def test_general_indexes_on_cyclic_graphs(name):
    graph = cyclic_communities(5, 4, 10, seed=6)
    index = PLAIN[name].build(graph)
    _assert_matches_bfs(index, graph, _all_pairs(graph))


@pytest.mark.parametrize("name", DAG_ONLY)
def test_dag_indexes_via_condensation(name):
    graph = cyclic_communities(5, 4, 10, seed=7)
    index = CondensedIndex.build(graph, inner=PLAIN[name])
    _assert_matches_bfs(index, graph, _all_pairs(graph))
    assert index.metadata.input_kind == "General"
    assert index.metadata.name.endswith("+SCC")


@pytest.mark.parametrize(
    "name", ["GRAIL", "Tree cover", "TOL", "TFL", "3-Hop", "Path-tree"]
)
def test_dag_only_indexes_reject_cycles(name):
    from repro.graphs.digraph import DiGraph

    cyclic = DiGraph(2, [(0, 1), (1, 0)])
    with pytest.raises(NotADAGError):
        PLAIN[name].build(cyclic)


@pytest.mark.parametrize("name", sorted(PLAIN))
def test_out_of_range_query_raises(name):
    from repro.errors import QueryError

    graph = random_dag(10, 15, seed=8)
    index = PLAIN[name].build(graph)
    with pytest.raises(QueryError):
        index.query(0, 99)
    with pytest.raises(QueryError):
        index.query(-1, 0)


@pytest.mark.parametrize("name", sorted(PLAIN))
def test_size_in_entries_nonnegative(name):
    graph = random_dag(25, 60, seed=9)
    index = PLAIN[name].build(graph)
    assert index.size_in_entries() >= 0
    assert str(index.size_in_entries()) in repr(index) or True  # repr smoke
