"""Tests for the bidirectional index-guided traversal fallback."""

from __future__ import annotations

import pytest

from repro.core.base import guided_query, guided_query_bidirectional
from repro.core.registry import all_plain_indexes
from repro.graphs.generators import cyclic_communities, random_dag
from repro.traversal.online import bfs_reachable

PLAIN = all_plain_indexes()
PARTIAL = sorted(n for n, c in PLAIN.items() if not c.metadata.complete)


@pytest.mark.parametrize("name", PARTIAL)
def test_bidirectional_guided_is_exact(name):
    cls = PLAIN[name]
    if cls.metadata.input_kind == "DAG":
        graph = random_dag(40, 95, seed=111)
    else:
        graph = cyclic_communities(5, 4, 10, seed=111)
    index = cls.build(graph)
    for s in range(graph.num_vertices):
        for t in range(graph.num_vertices):
            expected = bfs_reachable(graph, s, t)
            assert guided_query_bidirectional(graph, index, s, t) == expected, (
                name,
                s,
                t,
            )


@pytest.mark.parametrize("name", ["GRAIL", "BFL", "GRIPP"])
def test_agrees_with_unidirectional_guided(name):
    cls = PLAIN[name]
    if cls.metadata.input_kind == "DAG":
        graph = random_dag(35, 80, seed=112)
    else:
        graph = cyclic_communities(4, 4, 9, seed=112)
    index = cls.build(graph)
    for s in range(graph.num_vertices):
        for t in range(graph.num_vertices):
            assert guided_query(graph, index, s, t) == guided_query_bidirectional(
                graph, index, s, t
            )


def test_trivial_cases():
    graph = random_dag(10, 15, seed=113)
    index = PLAIN["GRAIL"].build(graph)
    for v in graph.vertices():
        assert guided_query_bidirectional(graph, index, v, v)
