"""Differential matrix: the sharded composition is exact everywhere.

``ShardedIndex`` must agree with the BFS oracle for every inner family,
graph shape, and shard count — the two-level out-border → boundary-index
→ in-border composition has no approximation anywhere, so any mismatch
is a bug.  ``k=1`` must degenerate to the monolithic inner index (empty
cut, no boundary index), and ``explain`` must agree with ``query`` while
attributing one of the shard routes.
"""

from __future__ import annotations

import pytest

from repro.graphs.generators import (
    community_dag,
    layered_dag,
    random_dag,
    tree_with_shortcuts,
)
from repro.shard import ShardedIndex
from repro.traversal.online import bfs_reachable

# ≥5 inner families, spanning frameworks and complete/partial designs.
FAMILIES = ("PLL", "GRAIL", "TC", "Tree cover", "BFL", "Feline")

SHARD_COUNTS = (1, 2, 4, 8)

SHARD_ROUTES = {"trivial", "intra_shard", "cross_shard", "boundary_cache"}


def _shapes():
    """≥3 structurally distinct DAG shapes, small enough to oracle fully."""
    return (
        ("random", random_dag(30, 70, seed=401)),
        ("layered", layered_dag(5, 6, 2, seed=402)),
        ("community", community_dag(4, 8, seed=403, inter_edge_prob=0.05)),
        ("tree+shortcuts", tree_with_shortcuts(30, 8, seed=404)),
    )


def _sample_pairs(n: int) -> list[tuple[int, int]]:
    return [(s, t) for s in range(0, n, 2) for t in range(n)]


@pytest.mark.parametrize("family", FAMILIES)
def test_sharded_matches_oracle(family):
    """Every (family, shape, k): scalar and batch answers equal the oracle."""
    for shape_name, graph in _shapes():
        pairs = _sample_pairs(graph.num_vertices)
        expected = [bfs_reachable(graph, s, t) for s, t in pairs]
        for k in SHARD_COUNTS:
            index = ShardedIndex.build(graph, family=family, num_shards=k)
            assert index.query_batch(pairs) == expected, (family, shape_name, k)
            scalar = [index.query(s, t) for s, t in pairs[:60]]
            assert scalar == expected[:60], (family, shape_name, k)


@pytest.mark.parametrize("family", ("PLL", "GRAIL", "TC"))
def test_k1_degenerates_to_monolithic(family):
    """One shard: no cut, no boundary index, same answers as the plain build."""
    from repro.core.registry import plain_index

    graph = random_dag(25, 55, seed=405)
    sharded = ShardedIndex.build(graph, family=family, num_shards=1)
    assert sharded.partition.num_shards == 1
    assert sharded.partition.cut_edges == ()
    assert sharded.boundary_index is None
    assert len(sharded.shards) == 1
    monolithic = plain_index(family).build(graph)
    pairs = _sample_pairs(graph.num_vertices)
    assert sharded.query_batch(pairs) == monolithic.query_batch(pairs)


def test_k_clamped_to_vertex_count():
    """Requesting more shards than vertices still yields non-empty shards."""
    graph = random_dag(5, 6, seed=406)
    index = ShardedIndex.build(graph, num_shards=8)
    assert index.partition.num_shards == 5
    assert all(size == 1 for size in index.partition.shard_sizes)
    pairs = [(s, t) for s in range(5) for t in range(5)]
    assert index.query_batch(pairs) == [
        bfs_reachable(graph, s, t) for s, t in pairs
    ]


@pytest.mark.parametrize("k", SHARD_COUNTS)
def test_explain_agrees_with_query(k):
    """explain() answer == query() everywhere, routes from the shard set."""
    graph = community_dag(4, 8, seed=407, inter_edge_prob=0.08)
    index = ShardedIndex.build(graph, num_shards=k)
    seen = set()
    for s in range(0, graph.num_vertices, 2):
        for t in range(graph.num_vertices):
            explanation = index.explain(s, t)
            assert explanation.answer == index.query(s, t) == bfs_reachable(
                graph, s, t
            ), (k, s, t)
            assert explanation.route in SHARD_ROUTES, explanation.route
            assert explanation.details
            seen.add(explanation.route)
    assert "trivial" in seen
    assert "intra_shard" in seen
    if k > 1:
        assert "cross_shard" in seen


def test_repeat_composition_hits_boundary_cache():
    """A repeated cross-shard border pair is answered from the memo."""
    graph = community_dag(2, 10, seed=408, inter_edge_prob=0.1)
    index = ShardedIndex.build(graph, num_shards=2)
    cross = next(
        (s, t)
        for s in range(graph.num_vertices)
        for t in range(graph.num_vertices)
        if index.partition.shard_of[s] != index.partition.shard_of[t]
        and bfs_reachable(graph, s, t)
    )
    first = index.explain(*cross)
    second = index.explain(*cross)
    assert first.route == "cross_shard"
    assert second.route == "boundary_cache"
    assert first.answer == second.answer == index.query(*cross)
