"""Tests for NFA/DFA compilation, cross-checked against Python's re module."""

from __future__ import annotations

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traversal.automaton import build_dfa, build_nfa
from repro.traversal.regex import parse_constraint


def _to_python_regex(text: str) -> str:
    """Translate our single-character-label syntax to a Python regex."""
    return (
        text.replace("·", "")
        .replace(".", "")
        .replace("∪", "|")
        .replace(" ", "")
    )


CASES = [
    ("a", ["a"], ["", "b", "aa"]),
    ("a*", ["", "a", "aaa"], ["b", "ab"]),
    ("a+", ["a", "aa"], ["", "b"]),
    ("a . b", ["ab"], ["", "a", "b", "ba", "abb"]),
    ("(a | b)*", ["", "a", "b", "abba"], ["c", "ac"]),
    ("(a . b)*", ["", "ab", "abab"], ["a", "ba", "aba"]),
    ("(a . b)+", ["ab", "abab"], ["", "a"]),
    ("((a | b) . c)*", ["", "ac", "bcac"], ["c", "ab", "acb"]),
]


class TestDFA:
    @pytest.mark.parametrize("pattern,accepted,rejected", CASES)
    def test_known_languages(self, pattern, accepted, rejected):
        dfa = build_dfa(pattern)
        for word in accepted:
            assert dfa.accepts(list(word)), (pattern, word)
        for word in rejected:
            assert not dfa.accepts(list(word)), (pattern, word)

    def test_step_returns_none_for_dead_labels(self):
        dfa = build_dfa("a*")
        assert dfa.step(dfa.start, "z") is None

    def test_multicharacter_labels(self):
        dfa = build_dfa("(friendOf | follows)*")
        assert dfa.accepts(["friendOf", "follows", "friendOf"])
        assert not dfa.accepts(["worksFor"])


class TestNFA:
    def test_epsilon_closure_contains_itself(self):
        nfa = build_nfa("a*")
        closure = nfa.epsilon_closure(frozenset((nfa.start,)))
        assert nfa.start in closure

    def test_accepting_state_exists(self):
        nfa = build_nfa("a")
        assert 0 <= nfa.accept < nfa.num_states


@settings(max_examples=150, deadline=None)
@given(st.data())
def test_dfa_agrees_with_python_re(data):
    """On random words over {a,b}, the DFA matches Python's re exactly."""
    pattern = data.draw(
        st.sampled_from(
            ["a*", "(a|b)*", "(a.b)*", "(a.b)+", "a.(b|a)*", "((a|b).a)*", "a+|b+"]
        )
    )
    word = data.draw(st.text(alphabet="ab", max_size=8))
    dfa = build_dfa(pattern)
    python = re.fullmatch(_to_python_regex(pattern), word) is not None
    assert dfa.accepts(list(word)) == python


def test_parsed_node_input():
    node = parse_constraint("(a|b)+")
    dfa = build_dfa(node)
    assert dfa.accepts(["a"])
    assert not dfa.accepts([])


def _random_regex_nodes():
    """Recursive hypothesis strategy over the §2.2 grammar."""
    from repro.traversal.regex import (
        ConcatNode,
        LabelNode,
        PlusNode,
        StarNode,
        UnionNode,
    )

    labels = st.sampled_from(["a", "b"]).map(LabelNode)
    return st.recursive(
        labels,
        lambda inner: st.one_of(
            st.tuples(inner, inner).map(lambda p: ConcatNode(*p)),
            st.tuples(inner, inner).map(lambda p: UnionNode(*p)),
            inner.map(StarNode),
            inner.map(PlusNode),
        ),
        max_leaves=6,
    )


def _node_to_python(node) -> str:
    from repro.traversal.regex import (
        ConcatNode,
        LabelNode,
        PlusNode,
        StarNode,
        UnionNode,
    )

    if isinstance(node, LabelNode):
        return node.label
    if isinstance(node, ConcatNode):
        return f"(?:{_node_to_python(node.left)}{_node_to_python(node.right)})"
    if isinstance(node, UnionNode):
        return f"(?:{_node_to_python(node.left)}|{_node_to_python(node.right)})"
    if isinstance(node, StarNode):
        return f"(?:{_node_to_python(node.inner)})*"
    if isinstance(node, PlusNode):
        return f"(?:{_node_to_python(node.inner)})+"
    raise TypeError(type(node))


@settings(max_examples=200, deadline=None)
@given(_random_regex_nodes(), st.text(alphabet="ab", max_size=7))
def test_dfa_matches_python_re_on_random_regexes(node, word):
    """Random §2.2 grammar expressions agree with Python's re engine."""
    dfa = build_dfa(node)
    python = re.fullmatch(_node_to_python(node), word) is not None
    assert dfa.accepts(list(word)) == python
