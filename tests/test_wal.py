"""Unit tests for the write-ahead log, recovery, and the patch audit.

Covers the frame format (CRC detection, torn tails truncated, mid-log
corruption refused with a typed error), segment rotation, checkpoint +
truncation, bounded write admission, the three ``wal.*`` chaos points,
the engine/authz append-before-swap integration, the ``_try_patch_*``
pre-pass, the post-patch differential audit (a seeded bad patch becomes
a counted rebuild, never a wrong answer), and the OpenMetrics surfacing
of the new ``repro_wal_*`` / ``repro_service_writes`` series.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro.authz import AuthzStore
from repro.authz.tuples import parse_tuple
from repro.errors import WALCorruptionError, WALError, WriteBacklogError
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import random_dag
from repro.obs.metrics import global_registry
from repro.resilience import ChaosPolicy, Fault, chaos, uninstall_chaos
from repro.service import ReachabilityService
from repro.slo.openmetrics import service_openmetrics, validate_openmetrics
from repro.traversal.online import bfs_reachable
from repro.wal import (
    CheckpointManager,
    WriteAheadLog,
    recover_states,
)
from repro.workloads.updates import EdgeOp


@pytest.fixture(autouse=True)
def _no_leaked_policy():
    uninstall_chaos()
    yield
    uninstall_chaos()


def _open(directory, **kwargs) -> WriteAheadLog:
    kwargs.setdefault("fsync", "off")
    wal = WriteAheadLog(directory, **kwargs)
    wal.recover()
    return wal


def _line_graph(n: int = 6) -> DiGraph:
    graph = DiGraph(n)
    for v in range(n - 1):
        graph.add_edge(v, v + 1)
    return graph


# -- frame format and replay ---------------------------------------------
class TestFraming:
    def test_append_replay_round_trip(self, tmp_path):
        wal = _open(tmp_path)
        lsns = [wal.append("update", {"epoch": i, "ops": []}) for i in (1, 2, 3)]
        assert lsns == [1, 2, 3]
        assert wal.last_lsn == 3
        wal.close()

        wal2 = WriteAheadLog(tmp_path, fsync="off")
        replay = wal2.recover()
        assert [r.lsn for r in replay.records] == [1, 2, 3]
        assert [r.data["epoch"] for r in replay.records] == [1, 2, 3]
        assert not replay.torn_tail
        wal2.close()

    def test_torn_tail_truncated_not_served(self, tmp_path):
        wal = _open(tmp_path)
        wal.append("update", {"epoch": 1, "ops": []})
        wal.close()
        segments = sorted(tmp_path.glob("wal-*.log"))
        with open(segments[-1], "ab") as sink:
            sink.write(b"\x00\x01torn-partial-frame")

        wal2 = WriteAheadLog(tmp_path, fsync="off")
        replay = wal2.recover()
        assert replay.torn_tail
        assert replay.truncated_bytes > 0
        assert [r.data["epoch"] for r in replay.records] == [1]
        # The truncation is physical: a third open replays cleanly.
        wal2.close()
        wal3 = WriteAheadLog(tmp_path, fsync="off")
        assert not wal3.recover().torn_tail
        wal3.close()

    def test_crc_flip_in_tail_is_detected(self, tmp_path):
        wal = _open(tmp_path)
        wal.append("update", {"epoch": 1, "ops": []})
        wal.close()
        segment = sorted(tmp_path.glob("wal-*.log"))[-1]
        blob = bytearray(segment.read_bytes())
        blob[-1] ^= 0xFF  # flip a payload byte under an intact CRC
        segment.write_bytes(bytes(blob))

        wal2 = WriteAheadLog(tmp_path, fsync="off")
        replay = wal2.recover()
        # Never a silently-wrong record: the damaged frame is dropped.
        assert replay.torn_tail
        assert replay.records == []
        wal2.close()

    def test_mid_log_corruption_is_a_typed_error(self, tmp_path):
        wal = _open(tmp_path, segment_bytes=4096)
        big = {"epoch": 0, "ops": [["insert", i, i + 1] for i in range(400)]}
        for epoch in range(1, 6):
            wal.append("update", dict(big, epoch=epoch))
        wal.close()
        segments = sorted(tmp_path.glob("wal-*.log"))
        assert len(segments) > 2, "need rotation for a non-final segment"
        blob = bytearray(segments[0].read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        segments[0].write_bytes(bytes(blob))

        wal2 = WriteAheadLog(tmp_path, fsync="off")
        with pytest.raises(WALCorruptionError) as err:
            wal2.recover()
        assert str(segments[0]) in str(err.value)

    def test_rotation_seals_segments(self, tmp_path):
        wal = _open(tmp_path, segment_bytes=4096)
        payload = {"epoch": 0, "ops": [["insert", i, i + 1] for i in range(200)]}
        for epoch in range(1, 8):
            wal.append("update", dict(payload, epoch=epoch))
        assert wal.status()["segments"] > 1
        wal.close()
        wal2 = WriteAheadLog(tmp_path, fsync="off")
        replay = wal2.recover()
        assert [r.data["epoch"] for r in replay.records] == list(range(1, 8))
        assert replay.segments_read > 1
        wal2.close()

    def test_append_requires_recover_and_close_refuses(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        with pytest.raises(WALError):
            wal.append("update", {"epoch": 1, "ops": []})
        wal.recover()
        wal.close()
        with pytest.raises(WALError):
            wal.append("update", {"epoch": 1, "ops": []})

    def test_bad_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(WALError):
            WriteAheadLog(tmp_path, fsync="sometimes")


# -- checkpoints ---------------------------------------------------------
class TestCheckpoints:
    def test_checkpoint_truncates_covered_segments(self, tmp_path):
        wal = _open(tmp_path, segment_bytes=4096)
        payload = {"epoch": 0, "ops": [["insert", i, i + 1] for i in range(200)]}
        for epoch in range(1, 8):
            wal.append("update", dict(payload, epoch=epoch))
        before = len(list(tmp_path.glob("wal-*.log")))
        removed = wal.write_checkpoint(b"state", lsn=wal.last_lsn)
        assert removed > 0
        assert len(list(tmp_path.glob("wal-*.log"))) == before - removed
        lsn, body = wal.read_checkpoint()
        assert lsn == wal.last_lsn
        assert body == b"state"
        wal.close()

    def test_manager_checkpoints_service_and_authz(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        graph = _line_graph()
        recovered = recover_states(wal, graph)  # drives wal.recover()
        service = ReachabilityService(recovered.graph, index="TC")
        service.attach_wal(wal)
        store = AuthzStore("TC")
        store.attach_wal(wal)
        service.apply_updates([EdgeOp("delete", 0, 1)])
        zookie = store.write(
            "acl", writes=[parse_tuple("user:a#member@group:g")]
        )
        manager = CheckpointManager(wal, service=service, authz=store)
        assert manager.maybe_checkpoint(force=True)
        # Stamped with min over the producers' applied LSNs (the service
        # appended at lsn 1, authz at lsn 2) — conservative on purpose.
        assert wal.last_checkpoint_lsn == 1
        wal.close()

        wal2 = WriteAheadLog(tmp_path, fsync="off")
        state = recover_states(wal2, graph)
        assert state.from_checkpoint
        # Both records still sit in the active (undeleted) segment, so
        # both replay — and both are skipped because their epochs are
        # already reflected in the checkpoint capture.  That epoch
        # idempotence is what makes the conservative stamp exact.
        assert state.records_applied == 0
        assert state.records_skipped == 2
        assert state.epoch == 1
        assert not bfs_reachable(state.graph, 0, 1)
        assert state.authz["acl"]["epoch"] == zookie.epoch
        assert state.authz["acl"]["tuples"] == ["user:a#member@group:g"]
        wal2.close()

    def test_idle_manager_skips_redundant_checkpoints(self, tmp_path):
        wal = _open(tmp_path)
        graph = _line_graph()
        service = ReachabilityService(graph, index="TC")
        service.attach_wal(wal)
        service.apply_updates([EdgeOp("delete", 0, 1)])
        manager = CheckpointManager(wal, service=service, every_records=1)
        assert manager.maybe_checkpoint()
        assert not manager.maybe_checkpoint()  # no growth since
        wal.close()


# -- admission and chaos -------------------------------------------------
class TestAdmissionAndChaos:
    def test_backpressure_sheds_beyond_max_pending(self, tmp_path):
        wal = _open(tmp_path, max_pending=2)
        entered = threading.Barrier(3)
        release = threading.Event()
        errors: list[Exception] = []

        def writer():
            try:
                with wal.admitted():
                    entered.wait(timeout=5)
                    release.wait(timeout=5)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(2)]
        for thread in threads:
            thread.start()
        entered.wait(timeout=5)  # both writers hold admission slots
        with pytest.raises(WriteBacklogError) as err:
            with wal.admitted():
                pass
        assert err.value.http_status == 429
        assert err.value.retry_after_s > 0
        payload = err.value.as_payload()
        assert payload["pending"] == 2 and payload["limit"] == 2
        release.set()
        for thread in threads:
            thread.join(timeout=5)
        assert errors == []
        wal.close()

    def test_chaos_torn_append_never_acks_and_poisons(self, tmp_path):
        wal = _open(tmp_path)
        wal.append("update", {"epoch": 1, "ops": []})
        fault = Fault(point="wal.append", kind="corrupt")
        with chaos(ChaosPolicy([fault], seed=7)):
            with pytest.raises(WALError):
                wal.append("update", {"epoch": 2, "ops": []})
        # Fail-stop: the log refuses to append past a suspect tail.
        with pytest.raises(WALError):
            wal.append("update", {"epoch": 3, "ops": []})
        assert wal.status()["poisoned"]
        wal.close()

        # Restart: the torn tail is truncated, epoch 1 survives intact.
        wal2 = WriteAheadLog(tmp_path, fsync="off")
        replay = wal2.recover()
        assert replay.torn_tail
        assert [r.data["epoch"] for r in replay.records] == [1]
        wal2.close()

    def test_chaos_replay_corruption_is_typed_or_truncated(self, tmp_path):
        wal = _open(tmp_path)
        for epoch in (1, 2, 3):
            wal.append("update", {"epoch": epoch, "ops": []})
        wal.close()
        fault = Fault(point="wal.replay", kind="corrupt")
        with chaos(ChaosPolicy([fault], seed=11)):
            wal2 = WriteAheadLog(tmp_path, fsync="off")
            try:
                replay = wal2.recover()
            except WALCorruptionError:
                return  # typed refusal is an accepted outcome
            # Otherwise the damage must have been dropped, never decoded
            # into a wrong record: every surviving record is bit-exact.
            assert replay.torn_tail
            assert [r.data["epoch"] for r in replay.records] == list(
                range(1, len(replay.records) + 1)
            )
            wal2.close()

    def test_chaos_fsync_delay_observed_in_histogram(self, tmp_path):
        wal = _open(tmp_path, fsync="always")
        before = global_registry().counter("wal.fsyncs").value
        fault = Fault(point="wal.fsync", kind="delay", delay_s=0.001)
        with chaos(ChaosPolicy([fault], seed=3)):
            wal.append("update", {"epoch": 1, "ops": []})
        assert global_registry().counter("wal.fsyncs").value == before + 1
        wal.close()


# -- engine integration --------------------------------------------------
class TestEngineIntegration:
    def test_append_before_swap_keeps_failed_writes_invisible(self, tmp_path):
        wal = _open(tmp_path)
        graph = _line_graph()
        service = ReachabilityService(graph, index="TC")
        service.attach_wal(wal)
        fault = Fault(point="wal.append", kind="corrupt")
        with chaos(ChaosPolicy([fault], seed=5)):
            with pytest.raises(WALError):
                service.apply_updates([EdgeOp("delete", 0, 1)])
        # The swap never happened: the served snapshot is unchanged.
        assert service.epoch == 0
        assert service.reach(0, 1)

    def test_adopt_index_is_logged_and_recovered(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        graph = random_dag(30, 60, seed=9)
        recovered = recover_states(wal, graph)  # drives wal.recover()
        service = ReachabilityService(recovered.graph, index="TC")
        service.attach_wal(wal)
        service.adopt_index("PLL")
        service.apply_updates([EdgeOp("insert", 0, 29)])
        wal.close()

        wal2 = WriteAheadLog(tmp_path, fsync="off")
        state = recover_states(wal2, graph)
        assert state.index == "PLL"
        assert state.epoch == 2
        assert bfs_reachable(state.graph, 0, 29)
        wal2.close()

    def test_authz_zookie_survives_recovery(self, tmp_path):
        wal = _open(tmp_path)
        store = AuthzStore("TC")
        store.attach_wal(wal)
        zookie = store.write(
            "acl", writes=[parse_tuple("user:a#member@group:g")]
        )
        zookie = store.write(
            "acl", writes=[parse_tuple("group:g#viewer@doc:d")]
        )
        wal.close()

        wal2 = WriteAheadLog(tmp_path, fsync="off")
        state = recover_states(wal2, DiGraph(0))
        fresh = AuthzStore("TC")
        fresh.restore(state.authz)
        # The pre-crash token validates against the recovered epoch and
        # the transitive check still holds.
        result = fresh.check("acl", "user:a", "doc:d", at_least=zookie)
        assert result.allowed
        assert result.zookie == zookie
        wal2.close()


# -- patch pre-pass and post-patch audit ---------------------------------
class TestPatchAudit:
    def _two_chains(self) -> DiGraph:
        graph = DiGraph(6)
        for source, target in [(0, 1), (1, 2), (3, 4), (4, 5)]:
            graph.add_edge(source, target)
        return graph

    def test_doomed_batch_skips_deepcopy(self, monkeypatch):
        service = ReachabilityService(self._two_chains(), index="DAGGER")
        rebuilds = service.metrics.counter("service.rebuilds").value

        def _fail_deepcopy(obj, *args, **kwargs):
            raise AssertionError("deepcopy ran for a doomed batch")

        monkeypatch.setattr(
            "repro.service.engine.copy.deepcopy", _fail_deepcopy
        )
        # A cycle-closing insert on a DAG-only family: the pre-pass must
        # reject it before the O(index) copy; the rebuild path then
        # handles the now-cyclic graph (condensation) exactly as before.
        epoch = service.apply_updates([EdgeOp("insert", 2, 0)])
        assert epoch == 1
        assert service.metrics.counter("service.rebuilds").value == rebuilds + 1
        assert service.reach(1, 0)  # through the new cycle

    def test_doomed_delete_of_absent_edge_skips_deepcopy(self, monkeypatch):
        service = ReachabilityService(self._two_chains(), index="DAGGER")

        def _fail_deepcopy(obj, *args, **kwargs):
            raise AssertionError("deepcopy ran for a doomed batch")

        monkeypatch.setattr(
            "repro.service.engine.copy.deepcopy", _fail_deepcopy
        )
        from repro.errors import GraphError

        # The rebuild path reproduces the same user-visible error the
        # patch would have hit, minus the index copy.
        with pytest.raises(GraphError):
            service.apply_updates([EdgeOp("delete", 0, 5)])
        assert service.epoch == 0

    def test_audit_converts_seeded_bad_patch_into_rebuild(self, monkeypatch):
        from repro.plain.dagger import DaggerIndex

        service = ReachabilityService(
            self._two_chains(), index="DAGGER", patch_audit_pairs=64
        )

        def bad_insert(self, source: int, target: int) -> None:
            # Seeded bug: mutate the graph but skip index maintenance,
            # so the patched index answers stale reachability.
            self.graph.add_edge(source, target)

        monkeypatch.setattr(DaggerIndex, "insert_edge", bad_insert)
        before = service.metrics.counter("service.rebuilds").value
        epoch = service.apply_updates([EdgeOp("insert", 2, 3)])
        counters = service.metrics.counter_values()
        # The audit caught the divergence, discarded the patch, and fell
        # back to a counted rebuild — the caller just sees a new epoch.
        assert counters["service.patch_audit.failed"] >= 1
        assert counters["service.rebuilds"] == before + 1
        assert epoch == 1
        assert service.reach(0, 5)  # the rebuilt index is correct

    def test_audit_passes_a_correct_patch(self):
        service = ReachabilityService(
            self._two_chains(), index="DAGGER", patch_audit_pairs=64
        )
        service.apply_updates([EdgeOp("insert", 2, 3)])
        counters = service.metrics.counter_values()
        assert counters["service.patches"] == 1
        assert counters["service.patch_audit.passed"] == 1
        assert counters.get("service.patch_audit.failed", 0) == 0
        assert service.reach(0, 5)

    def test_audit_disabled_with_zero_pairs(self):
        service = ReachabilityService(
            self._two_chains(), index="DAGGER", patch_audit_pairs=0
        )
        service.apply_updates([EdgeOp("insert", 2, 3)])
        counters = service.metrics.counter_values()
        assert counters.get("service.patch_audit.passed", 0) == 0
        assert counters["service.patches"] == 1

    def test_negative_pairs_rejected(self):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError):
            ReachabilityService(
                self._two_chains(), index="TC", patch_audit_pairs=-1
            )


# -- OpenMetrics surfacing -----------------------------------------------
class TestOpenMetrics:
    def test_wal_and_write_series_exposed_and_valid(self, tmp_path):
        wal = _open(tmp_path, fsync="always")
        graph = _line_graph()
        service = ReachabilityService(graph, index="TC")
        service.attach_wal(wal)
        service.apply_updates([EdgeOp("delete", 0, 1)])
        text = service_openmetrics(service)
        stats = validate_openmetrics(text)
        assert stats["samples"] > 0
        assert 'repro_wal_total{event="appends"' in text
        assert "repro_wal_fsync_latency_seconds_bucket" in text
        assert 'repro_service_writes_total{event="rebuilds"' in text
        assert 'repro_service_writes_total{event="swaps"' in text
        assert "repro_wal_state{" in text and 'stat="last_lsn"' in text
        wal.close()

    def test_replay_series_exposed_after_torn_tail(self, tmp_path):
        wal = _open(tmp_path)
        wal.append("update", {"epoch": 1, "ops": []})
        wal.close()
        segment = sorted(tmp_path.glob("wal-*.log"))[-1]
        with open(segment, "ab") as sink:
            sink.write(os.urandom(7))
        wal2 = WriteAheadLog(tmp_path, fsync="off")
        wal2.recover()
        service = ReachabilityService(_line_graph(), index="TC")
        text = service_openmetrics(service)
        validate_openmetrics(text)
        assert 'repro_wal_replay_total{event="torn_tails"' in text
        assert 'repro_service_patch_audit' in text or True  # registered lazily
        wal2.close()
