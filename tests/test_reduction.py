"""Tests for the §3.4 DAG reduction preprocessing."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.digraph import DiGraph
from repro.graphs.generators import random_dag
from repro.graphs.reduction import (
    merge_equivalent_vertices,
    reduce_dag,
    remove_redundant_edges,
)
from repro.traversal.online import bfs_reachable


class TestRedundantEdges:
    def test_transitive_edge_removed(self):
        graph = DiGraph(3, [(0, 1), (1, 2), (0, 2)])
        reduced = remove_redundant_edges(graph)
        assert reduced.num_edges == 2
        assert not reduced.has_edge(0, 2)

    def test_no_false_removals(self):
        graph = DiGraph(3, [(0, 1), (0, 2)])
        reduced = remove_redundant_edges(graph)
        assert reduced.num_edges == 2

    def test_diamond_keeps_both_branches(self):
        graph = DiGraph(4, [(0, 1), (0, 2), (1, 3), (2, 3), (0, 3)])
        reduced = remove_redundant_edges(graph)
        assert not reduced.has_edge(0, 3)
        assert reduced.num_edges == 4


class TestEquivalentVertices:
    def test_twins_are_merged(self):
        # 1 and 2 have identical in- and out-neighbourhoods
        graph = DiGraph(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        merged, rep = merge_equivalent_vertices(graph)
        assert merged.num_vertices == 3
        assert rep[1] == rep[2]

    def test_distinct_vertices_not_merged(self, small_dag):
        merged, _rep = merge_equivalent_vertices(small_dag)
        # only vertices with identical neighbourhoods collapse; the fixture
        # has none beyond what its structure implies
        assert merged.num_vertices <= small_dag.num_vertices


@settings(max_examples=20, deadline=None)
@given(st.integers(3, 18), st.integers(0, 50), st.integers(0, 500))
def test_reduction_preserves_reachability(n, extra, seed):
    graph = random_dag(n, min(extra, n * (n - 1) // 2), seed=seed)
    reduced = reduce_dag(graph)
    for s in range(n):
        for t in range(n):
            original = bfs_reachable(graph, s, t)
            if reduced.rep[s] == reduced.rep[t]:
                # equivalent twins in a DAG are mutually unreachable
                assert original == (s == t)
            else:
                lifted = bfs_reachable(reduced.dag, reduced.rep[s], reduced.rep[t])
                assert original == lifted


def test_reduction_reports_savings():
    graph = DiGraph(4, [(0, 1), (0, 2), (1, 3), (2, 3), (0, 3)])
    reduced = reduce_dag(graph)
    assert reduced.vertices_merged == 1  # the 1/2 twins
    assert reduced.edges_removed >= 1  # the (0, 3) shortcut
