"""The chaos matrix: every injected failure ends in a typed outcome.

Each test drives one seeded fault schedule through a real surface of the
stack — slow shard, dead build worker, corrupt index file, mid-query
delay, handler fault — and asserts the observable result is a typed
``repro`` error or a three-valued UNKNOWN.  Never a hang, never a wrong
boolean, never a raw traceback.  A final differential check pins the
happy path: with no policy installed the chaos layer is a no-op.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import ChaosInjectedError, PersistenceError
from repro.graphs.generators import random_dag
from repro.resilience import (
    ChaosPolicy,
    Fault,
    chaos,
    chaos_active,
    chaos_point,
    deadline_scope,
    install_chaos,
    uninstall_chaos,
)
from repro.traversal.online import bfs_reachable


@pytest.fixture(autouse=True)
def _no_leaked_policy():
    """Every test starts and ends with chaos uninstalled."""
    uninstall_chaos()
    yield
    uninstall_chaos()


# -- Fault.parse ---------------------------------------------------------
class TestFaultParse:
    def test_error_kind(self):
        fault = Fault.parse("shard.build_worker=error")
        assert fault.point == "shard.build_worker"
        assert fault.kind == "error"
        assert fault.probability == 1.0

    def test_delay_with_probability_and_ms(self):
        fault = Fault.parse("kernels.sweep=delay:0.5:20")
        assert fault.kind == "delay"
        assert fault.probability == 0.5
        assert fault.delay_s == pytest.approx(0.020)

    def test_delay_defaults_to_nonzero(self):
        assert Fault.parse("kernels.sweep=delay").delay_s > 0

    @pytest.mark.parametrize(
        "spec", ["nope", "x=", "=error", "p=explode", "p=delay:x", "p=delay:1:y"]
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValueError):
            Fault.parse(spec)

    def test_bad_kind_rejected_at_construction(self):
        with pytest.raises(ValueError, match="kind"):
            Fault(point="x", kind="explode")


# -- deterministic schedules ---------------------------------------------
class TestDeterminism:
    def test_same_seed_same_decisions(self):
        def run(seed: int) -> list[int]:
            policy = ChaosPolicy(
                [Fault(point="p", kind="error", probability=0.5)], seed=seed
            )
            return [len(policy.decide("p")) for _ in range(50)]

        assert run(7) == run(7)
        assert run(7) != run(8)  # astronomically unlikely to collide

    def test_after_skips_early_hits(self):
        policy = ChaosPolicy([Fault(point="p", kind="error", after=2)], seed=0)
        fired = [len(policy.decide("p")) for _ in range(4)]
        assert fired == [0, 0, 1, 1]

    def test_times_caps_injections(self):
        policy = ChaosPolicy([Fault(point="p", kind="error", times=2)], seed=0)
        fired = [len(policy.decide("p")) for _ in range(4)]
        assert fired == [1, 1, 0, 0]

    def test_wildcard_point_matches_prefix(self):
        policy = ChaosPolicy([Fault(point="shard.*", kind="error")], seed=0)
        assert policy.decide("shard.build_worker")
        assert not policy.decide("persistence.read")

    def test_corruption_is_deterministic(self):
        payload = bytes(range(256))

        def corrupt_once(seed: int) -> bytes:
            with chaos(ChaosPolicy([Fault(point="p", kind="corrupt")], seed=seed)):
                return chaos_point("p", payload)

        first, second = corrupt_once(3), corrupt_once(3)
        assert first == second
        assert first != payload


# -- the chaos matrix ----------------------------------------------------
class TestChaosMatrix:
    def test_slow_shard_build_still_succeeds(self):
        """Row 1: a slow shard delays the build but the result is exact."""
        from repro.shard import ShardedIndex

        graph = random_dag(120, 360, seed=601)
        policy = ChaosPolicy(
            [Fault(point="shard.build_worker", kind="delay", delay_s=0.05, times=1)],
            seed=1,
        )
        start = time.perf_counter()
        with chaos(policy):
            index = ShardedIndex.build(
                graph, family="PLL", num_shards=2, executor="thread"
            )
        assert time.perf_counter() - start >= 0.05
        assert policy.injected_counts()["shard.build_worker/delay"] == 1
        for source, target in [(0, 100), (5, 80), (110, 3)]:
            assert index.query(source, target) == bfs_reachable(graph, source, target)

    def test_dead_worker_retries_then_succeeds(self):
        """Row 2a: one worker death is absorbed by the retry budget."""
        from repro.shard import ShardedIndex

        graph = random_dag(120, 360, seed=602)
        with chaos(
            ChaosPolicy([Fault(point="shard.build_worker", kind="error", times=1)], seed=2)
        ):
            index = ShardedIndex.build(
                graph, family="PLL", num_shards=2, executor="thread"
            )
        assert max(index.shard_build_report.shard_attempts) == 2
        assert index.query(0, 100) == bfs_reachable(graph, 0, 100)

    def test_dead_worker_exhausting_retries_is_typed(self):
        """Row 2b: a permanently dead worker surfaces the typed error."""
        from repro.shard import ShardedIndex

        graph = random_dag(120, 360, seed=603)
        with chaos(
            ChaosPolicy([Fault(point="shard.build_worker", kind="error")], seed=3)
        ):
            with pytest.raises(ChaosInjectedError):
                ShardedIndex.build(
                    graph, family="PLL", num_shards=2, executor="thread"
                )

    def test_corrupt_index_file_is_typed(self, tmp_path):
        """Row 3: injected read corruption → checksum → PersistenceError."""
        from repro.core.registry import plain_index
        from repro.persistence import load_index, save_index

        graph = random_dag(40, 100, seed=604)
        index = plain_index("PLL").build(graph)
        path = tmp_path / "victim.repro"
        save_index(index, path)
        with chaos(ChaosPolicy([Fault(point="persistence.read", kind="corrupt")], seed=4)):
            with pytest.raises(PersistenceError, match="checksum mismatch"):
                load_index(path)
        # The file itself is intact: a clean read still works.
        assert load_index(path).query(0, 0)

    def test_mid_query_delay_with_deadline_is_unknown(self):
        """Row 4: a stalled kernel sweep under a deadline → UNKNOWN."""
        from repro.service import ReachabilityService

        graph = random_dag(400, 1200, seed=605)
        service = ReachabilityService(graph, index="GRAIL", cache_capacity=None)
        pairs = [(s, (s * 13 + 7) % 400) for s in range(40)]
        with chaos(
            ChaosPolicy(
                [Fault(point="kernels.sweep", kind="delay", delay_s=0.05)], seed=5
            )
        ):
            with deadline_scope(20.0):
                results = service.execute_batch(pairs)
        statuses = {result.status for result in results}
        # Every answer is typed: exact where the probe sufficed, UNKNOWN
        # where the stalled sweep ran out of budget.  Never a guess.
        assert statuses <= {"TRUE", "FALSE", "UNKNOWN"}
        assert "UNKNOWN" in statuses
        for result in results:
            if result.status == "UNKNOWN":
                assert result.route == "deadline_abort"

    def test_handler_fault_is_json_500_not_traceback(self):
        """Row 5: an injected handler fault is a JSON 500 on the wire."""
        from repro.service import ReachabilityService
        from repro.service.server import serve

        graph = random_dag(30, 90, seed=606)
        service = ReachabilityService(graph, index="PLL")
        server = serve(service, port=0)
        server.start_background()
        host, port = server.server_address[:2]
        try:
            with chaos(
                ChaosPolicy([Fault(point="service.handler", kind="error")], seed=6)
            ):
                try:
                    with urllib.request.urlopen(
                        f"http://{host}:{port}/reach?source=0&target=5", timeout=10
                    ) as response:
                        status, body = response.status, json.loads(response.read())
                except urllib.error.HTTPError as error:
                    status, body = error.code, json.loads(error.read())
            assert status == 500
            assert "injected fault" in body["error"]
            assert "Traceback" not in body["error"]
        finally:
            server.shutdown()
            server.server_close()

    def test_every_schedule_terminates_with_typed_outcome(self):
        """Sweep of seeds: chaos never produces an untyped escape."""
        from repro.core.registry import plain_index
        from repro.errors import ReproError
        from repro.persistence import load_index, save_index
        from repro.service import ReachabilityService

        graph = random_dag(80, 240, seed=607)
        for seed in range(5):
            policy = ChaosPolicy(
                [
                    Fault(point="persistence.read", kind="corrupt", probability=0.5),
                    Fault(point="kernels.sweep", kind="delay", delay_s=0.002,
                          probability=0.5),
                    Fault(point="service.handler", kind="error", probability=0.3),
                ],
                seed=seed,
            )
            with chaos(policy):
                service = ReachabilityService(graph, index="GRAIL",
                                              cache_capacity=None)
                with deadline_scope(50.0):
                    for result in service.execute_batch([(0, 70), (5, 60)]):
                        assert result.status in ("TRUE", "FALSE", "UNKNOWN")
                try:
                    import tempfile

                    with tempfile.TemporaryDirectory() as tmp:
                        path = f"{tmp}/x.repro"
                        save_index(plain_index("PLL").build(graph), path)
                        load_index(path)
                except ReproError:
                    pass  # typed: exactly what resilience promises


# -- happy-path differential ---------------------------------------------
class TestHappyPathUnchanged:
    def test_chaos_point_is_noop_without_policy(self):
        assert not chaos_active()
        payload = b"precious bytes"
        assert chaos_point("persistence.read", payload) is payload
        assert chaos_point("kernels.sweep") is None

    def test_install_uninstall_toggles(self):
        policy = ChaosPolicy([Fault(point="p", kind="error")], seed=0)
        install_chaos(policy)
        assert chaos_active()
        with pytest.raises(ChaosInjectedError):
            chaos_point("p")
        uninstall_chaos()
        assert not chaos_active()
        chaos_point("p")  # no-op again

    def test_differential_matrix_chaos_off_no_deadline(self):
        """With chaos off and no deadline, answers are byte-identical to
        the traversal oracle across the full vertex matrix."""
        from repro.service import ReachabilityService

        graph = random_dag(25, 70, seed=608)
        service = ReachabilityService(graph, index="GRAIL", cache_capacity=None)
        n = graph.num_vertices
        for source in range(n):
            for target in range(n):
                result = service.reach_ex(source, target)
                assert result.answer == bfs_reachable(graph, source, target)
                assert result.status in ("TRUE", "FALSE")
                assert result.route in ("plain_index", "cache")

    def test_counters_track_injections(self):
        from repro.obs.metrics import global_registry

        def injected_delays() -> int:
            tree = global_registry().as_dict()
            return tree.get("chaos", {}).get("injected", {}).get("delay", 0)

        before = injected_delays()
        with chaos(ChaosPolicy([Fault(point="p", kind="delay", delay_s=0.0)], seed=9)):
            chaos_point("p")
        assert injected_delays() == before + 1
