"""Unit tests for index-internal structures: intervals, chains, 2-hop labels."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import random_dag
from repro.graphs.topo import topological_order
from repro.plain.chains import greedy_chain_decomposition
from repro.plain.interval import (
    forest_postorder_intervals,
    interval_list_contains,
    merge_intervals,
    spanning_forest,
)
from repro.plain.pruned import TwoHopLabels, build_pruned_labels, degree_order
from repro.traversal.online import bfs_reachable


class TestMergeIntervals:
    def test_adjacent_merge_example(self):
        """The paper's example: [1,6] and [7,8] merge to [1,8]."""
        assert merge_intervals([(1, 6), (7, 8)]) == [(1, 8)]

    def test_disjoint_kept(self):
        assert merge_intervals([(1, 2), (5, 6)]) == [(1, 2), (5, 6)]

    def test_overlap_merged(self):
        assert merge_intervals([(1, 5), (3, 9)]) == [(1, 9)]

    def test_empty(self):
        assert merge_intervals([]) == []

    @given(
        st.lists(
            st.tuples(st.integers(0, 40), st.integers(0, 40)).map(
                lambda t: (min(t), max(t))
            ),
            max_size=15,
        )
    )
    def test_merge_preserves_membership(self, intervals):
        merged = merge_intervals(intervals)
        # sorted and disjoint with gaps > 1
        for (a1, b1), (a2, b2) in zip(merged, merged[1:]):
            assert b1 + 1 < a2
        for point in range(0, 41):
            direct = any(a <= point <= b for a, b in intervals)
            assert direct == interval_list_contains(merged, point) or direct is False
            if direct:
                assert interval_list_contains(merged, point)


class TestSpanningForest:
    def test_parents_precede_children(self):
        graph = random_dag(30, 70, seed=91)
        order = topological_order(graph)
        parent = spanning_forest(graph, order)
        position = {v: i for i, v in enumerate(order)}
        for v, p in enumerate(parent):
            if p != -1:
                assert graph.has_edge(p, v)
                assert position[p] < position[v]

    def test_subtree_membership_matches_intervals(self):
        graph = random_dag(25, 50, seed=92)
        order = topological_order(graph)
        parent = spanning_forest(graph, order)
        intervals = forest_postorder_intervals(graph, parent)

        def tree_descendants(root):
            result = {root}
            frontier = [root]
            while frontier:
                v = frontier.pop()
                for w, p in enumerate(parent):
                    if p == v:
                        result.add(w)
                        frontier.append(w)
            return result

        for s in graph.vertices():
            subtree = tree_descendants(s)
            a, b = intervals[s]
            for t in graph.vertices():
                assert (a <= intervals[t][1] <= b) == (t in subtree)


class TestChainDecomposition:
    def test_chains_are_graph_paths(self):
        graph = random_dag(40, 90, seed=93)
        decomposition = greedy_chain_decomposition(graph)
        for chain in decomposition.chains:
            for u, v in zip(chain, chain[1:]):
                assert graph.has_edge(u, v)

    def test_partition(self):
        graph = random_dag(40, 90, seed=94)
        decomposition = greedy_chain_decomposition(graph)
        seen = sorted(v for chain in decomposition.chains for v in chain)
        assert seen == list(graph.vertices())
        for chain_id, chain in enumerate(decomposition.chains):
            for pos, v in enumerate(chain):
                assert decomposition.chain_of[v] == chain_id
                assert decomposition.position_of[v] == pos


class TestPrunedLabels:
    def test_every_entry_is_sound(self):
        graph = random_dag(35, 80, seed=95)
        labels = build_pruned_labels(graph, degree_order(graph))
        for v in graph.vertices():
            for hop in labels.l_in[v]:
                assert bfs_reachable(graph, hop, v)
            for hop in labels.l_out[v]:
                assert bfs_reachable(graph, v, hop)

    def test_coverage_is_complete(self):
        graph = random_dag(35, 80, seed=96)
        labels = build_pruned_labels(graph, degree_order(graph))
        for s in graph.vertices():
            for t in graph.vertices():
                assert labels.covered(s, t) == bfs_reachable(graph, s, t)

    def test_size_metric(self):
        labels = TwoHopLabels(3)
        labels.l_in[0].add(1)
        labels.l_out[2].update({0, 1})
        assert labels.size_in_entries() == 3
        labels.remove_hop(1)
        assert labels.size_in_entries() == 1

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 400))
    def test_pruned_labels_random_dags(self, seed):
        graph = random_dag(20, 45, seed=seed)
        labels = build_pruned_labels(graph, degree_order(graph))
        for s in range(20):
            for t in range(20):
                assert labels.covered(s, t) == bfs_reachable(graph, s, t)
