"""Tests for the SCARAB-style reachability backbone (§3.4)."""

from __future__ import annotations

import pytest

from repro.core.registry import plain_index
from repro.graphs.generators import (
    cyclic_communities,
    random_dag,
    scale_free_dag,
)
from repro.plain.scarab import ScarabBackboneIndex
from repro.traversal.online import bfs_reachable


@pytest.mark.parametrize("inner", ["PLL", "GRAIL", "BFL", "TC"])
def test_exact_on_dag(inner):
    graph = random_dag(40, 100, seed=95)
    index = ScarabBackboneIndex.build(graph, inner=plain_index(inner))
    for s in range(graph.num_vertices):
        for t in range(graph.num_vertices):
            assert index.query(s, t) == bfs_reachable(graph, s, t), (inner, s, t)


def test_exact_on_cyclic_graph():
    graph = cyclic_communities(4, 4, 8, seed=96)
    index = ScarabBackboneIndex.build(graph, inner=plain_index("PLL"))
    for s in range(graph.num_vertices):
        for t in range(graph.num_vertices):
            assert index.query(s, t) == bfs_reachable(graph, s, t)


def test_dag_only_inner_wrapped_when_backbone_cyclic():
    graph = cyclic_communities(3, 4, 6, seed=97)
    index = ScarabBackboneIndex.build(graph, inner=plain_index("GRAIL"))
    for s in range(graph.num_vertices):
        for t in range(graph.num_vertices):
            assert index.query(s, t) == bfs_reachable(graph, s, t)


def test_backbone_smaller_on_source_sink_heavy_graphs():
    graph = scale_free_dag(300, edges_per_vertex=2, seed=98)
    index = ScarabBackboneIndex.build(graph, inner=plain_index("PLL"))
    assert index.backbone_size < graph.num_vertices
    # and the inner index covers only the backbone
    assert index.inner.graph.num_vertices == index.backbone_size


def test_reduces_inner_index_size():
    graph = scale_free_dag(300, edges_per_vertex=2, seed=99)
    direct = plain_index("PLL").build(graph)
    backboned = ScarabBackboneIndex.build(graph, inner=plain_index("PLL"))
    assert backboned.inner.size_in_entries() < direct.size_in_entries()


def test_requires_inner():
    with pytest.raises(TypeError):
        ScarabBackboneIndex.build(random_dag(5, 6, seed=100))


def test_not_registered():
    from repro.core.registry import all_plain_indexes

    assert "SCARAB" not in all_plain_indexes()


def test_empty_backbone():
    """A star graph: every path has length 1, backbone is empty."""
    from repro.graphs.digraph import DiGraph

    graph = DiGraph(5, [(0, 1), (0, 2), (0, 3), (0, 4)])
    index = ScarabBackboneIndex.build(graph, inner=plain_index("PLL"))
    assert index.backbone_size == 0
    assert index.query(0, 3)
    assert not index.query(1, 2)
