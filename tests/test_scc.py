"""Tests for Tarjan SCC and condensation, cross-checked against networkx."""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.digraph import DiGraph
from repro.graphs.scc import condense, strongly_connected_components
from repro.graphs.topo import is_dag
from repro.traversal.online import bfs_reachable


def _to_networkx(graph: DiGraph) -> nx.DiGraph:
    nxg = nx.DiGraph()
    nxg.add_nodes_from(graph.vertices())
    nxg.add_edges_from(graph.edges())
    return nxg


class TestTarjan:
    def test_single_cycle(self):
        graph = DiGraph(3, [(0, 1), (1, 2), (2, 0)])
        components = strongly_connected_components(graph)
        assert len(components) == 1
        assert sorted(components[0]) == [0, 1, 2]

    def test_dag_has_singleton_components(self, small_dag):
        components = strongly_connected_components(small_dag)
        assert len(components) == small_dag.num_vertices
        assert all(len(c) == 1 for c in components)

    def test_fixture_components(self, cyclic_graph):
        components = {
            frozenset(c) for c in strongly_connected_components(cyclic_graph)
        }
        assert components == {
            frozenset({0, 1, 2}),
            frozenset({3, 4}),
            frozenset({5}),
        }

    def test_deep_chain_no_recursion_error(self):
        n = 50_000
        graph = DiGraph(n, ((i, i + 1) for i in range(n - 1)))
        components = strongly_connected_components(graph)
        assert len(components) == n

    def test_emitted_in_reverse_topological_order(self, cyclic_graph):
        components = strongly_connected_components(cyclic_graph)
        position = {}
        for i, comp in enumerate(components):
            for v in comp:
                position[v] = i
        # every edge goes from a later-emitted component to an earlier one
        for u, v in cyclic_graph.edges():
            assert position[u] >= position[v]


class TestCondense:
    def test_condensation_is_dag(self, medium_cyclic):
        condensation = condense(medium_cyclic)
        assert is_dag(condensation.dag)

    def test_members_partition_vertices(self, medium_cyclic):
        condensation = condense(medium_cyclic)
        seen = sorted(v for comp in condensation.members for v in comp)
        assert seen == list(medium_cyclic.vertices())

    def test_same_component(self, cyclic_graph):
        condensation = condense(cyclic_graph)
        assert condensation.same_component(0, 2)
        assert condensation.same_component(3, 4)
        assert not condensation.same_component(0, 3)

    def test_trivial_flag(self, small_dag, cyclic_graph):
        assert condense(small_dag).is_trivial
        assert not condense(cyclic_graph).is_trivial


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_matches_networkx_on_random_graphs(data):
    n = data.draw(st.integers(2, 25))
    edges = data.draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)), max_size=80
        )
    )
    graph = DiGraph(n)
    for u, v in edges:
        if u != v:
            graph.add_edge_if_absent(u, v)
    ours = {frozenset(c) for c in strongly_connected_components(graph)}
    theirs = {frozenset(c) for c in nx.strongly_connected_components(_to_networkx(graph))}
    assert ours == theirs


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_condensation_preserves_reachability(data):
    n = data.draw(st.integers(2, 18))
    edges = data.draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)), max_size=60
        )
    )
    graph = DiGraph(n)
    for u, v in edges:
        if u != v:
            graph.add_edge_if_absent(u, v)
    condensation = condense(graph)
    for s in range(n):
        for t in range(n):
            original = bfs_reachable(graph, s, t)
            cs, ct = condensation.scc_of[s], condensation.scc_of[t]
            lifted = cs == ct or bfs_reachable(condensation.dag, cs, ct)
            assert original == lifted
