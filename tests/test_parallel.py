"""Tests for the batch-synchronous (parallelisable) labeling (§5 extension)."""

from __future__ import annotations

import pytest

from repro.graphs.generators import cyclic_communities, random_dag
from repro.plain.parallel import BatchedPLLIndex, batched_pruned_labels
from repro.plain.pll import PLLIndex
from repro.plain.pruned import degree_order
from repro.traversal.online import bfs_reachable


@pytest.mark.parametrize("batch_size", [1, 4, 16, 1000])
def test_batched_labels_are_exact(batch_size):
    graph = random_dag(40, 100, seed=31)
    labels = batched_pruned_labels(graph, degree_order(graph), batch_size=batch_size)
    for s in graph.vertices():
        for t in graph.vertices():
            assert labels.covered(s, t) == bfs_reachable(graph, s, t)


def test_batch_size_one_matches_sequential_pll_exactly():
    graph = random_dag(40, 100, seed=32)
    sequential = PLLIndex.build(graph)
    batched = batched_pruned_labels(graph, degree_order(graph), batch_size=1)
    assert batched.l_in == sequential.labels.l_in
    assert batched.l_out == sequential.labels.l_out


def test_larger_batches_only_add_redundancy():
    """Bigger batches may add entries, never lose coverage."""
    graph = random_dag(60, 160, seed=33)
    order = degree_order(graph)
    sequential_size = batched_pruned_labels(graph, order, batch_size=1).size_in_entries()
    sizes = [
        batched_pruned_labels(graph, order, batch_size=b).size_in_entries()
        for b in (4, 16, 60)
    ]
    assert all(size >= sequential_size for size in sizes)
    # redundancy stays modest: the commit-phase validation does its job
    assert max(sizes) <= 2 * sequential_size


def test_thread_workers_produce_exact_labels():
    graph = cyclic_communities(5, 4, 10, seed=34)
    labels = batched_pruned_labels(
        graph, degree_order(graph), batch_size=8, workers="thread", max_workers=4
    )
    for s in graph.vertices():
        for t in graph.vertices():
            assert labels.covered(s, t) == bfs_reachable(graph, s, t)


def test_batched_index_class():
    graph = cyclic_communities(4, 4, 8, seed=35)
    index = BatchedPLLIndex.build(graph, batch_size=8)
    assert index.batch_size == 8
    assert index.metadata.complete
    for s in graph.vertices():
        for t in graph.vertices():
            assert index.query(s, t) == bfs_reachable(graph, s, t)


def test_not_registered_in_table1():
    from repro.core.registry import all_plain_indexes

    assert "Batched-PLL" not in all_plain_indexes()


def test_invalid_batch_size_rejected():
    graph = random_dag(5, 6, seed=36)
    with pytest.raises(ValueError):
        batched_pruned_labels(graph, degree_order(graph), batch_size=0)
