"""Property tests for the minimum-repeat machinery behind the RLC index."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.labeled.kleene import (
    match_first_leg,
    match_second_leg,
    minimum_repeat,
    is_periodic,
    periodic_summary,
    step_summary,
)

labels = st.integers(min_value=0, max_value=2)
sequences = st.lists(labels, min_size=0, max_size=10).map(tuple)
nonempty = st.lists(labels, min_size=1, max_size=10).map(tuple)


class TestMinimumRepeat:
    def test_examples(self):
        assert minimum_repeat((1, 2, 1, 2)) == (1, 2)
        assert minimum_repeat((1, 1, 1)) == (1,)
        assert minimum_repeat((1, 2, 3)) == (1, 2, 3)
        assert minimum_repeat(()) == ()

    @given(nonempty)
    def test_mr_regenerates_the_sequence(self, seq):
        mr = minimum_repeat(seq)
        assert len(seq) % len(mr) == 0
        assert mr * (len(seq) // len(mr)) == seq

    @given(nonempty, st.integers(1, 3))
    def test_mr_of_repeats_is_primitive(self, seq, reps):
        mr = minimum_repeat(seq * reps)
        assert minimum_repeat(mr) == mr


class TestPeriodicity:
    @given(nonempty, st.integers(1, 5))
    def test_is_periodic_definition(self, seq, p):
        expected = all(seq[i] == seq[i % p] for i in range(len(seq)))
        assert is_periodic(seq, p) == expected

    @given(nonempty)
    def test_summary_contains_only_true_periods(self, seq):
        for base, c in periodic_summary(seq, 4):
            assert is_periodic(seq, len(base))
            assert c == len(seq) % len(base)
            assert base == seq[: len(base)]


def _summary_of(seq, max_period):
    """Fold a sequence through step_summary from the empty state."""
    state = ("S", ())
    for label in seq:
        state = step_summary(state, label, max_period)
        if state is None:
            return None
    return state


class TestStepSummary:
    @given(sequences, st.integers(1, 4))
    def test_folding_matches_direct_summary(self, seq, max_period):
        state = _summary_of(seq, max_period)
        if len(seq) < max_period:
            assert state == ("S", seq)
        elif state is None:
            assert not periodic_summary(seq, max_period)
        else:
            assert state == ("A", periodic_summary(seq, max_period))


class TestLegMatching:
    """The matchers agree with brute-force alignment checks."""

    @given(nonempty, st.lists(labels, min_size=1, max_size=3).map(tuple))
    @settings(max_examples=300)
    def test_second_leg_matcher(self, seq, rho):
        p = len(rho)
        state = _summary_of(seq, max_period=3)
        expected = None
        aligned_r = (-len(seq)) % p
        if all(seq[i] == rho[(aligned_r + i) % p] for i in range(len(seq))):
            expected = aligned_r
        if state is None:
            # dead summaries can only come from sequences that match no rho
            assert expected is None or p > 3
        elif p <= 3:
            assert match_second_leg(state, rho) == expected

    @given(nonempty, st.lists(labels, min_size=1, max_size=3).map(tuple))
    @settings(max_examples=300)
    def test_first_leg_matcher(self, seq, rho):
        p = len(rho)
        # first legs are built by a backward search: fold the reversed
        # sequence, then store short entries forward-oriented
        state = _summary_of(tuple(reversed(seq)), max_period=3)
        expected = None
        if all(seq[i] == rho[i % p] for i in range(len(seq))):
            expected = len(seq) % p
        if state is None:
            assert expected is None or p > 3
        elif p <= 3:
            if state[0] == "S":
                state = ("S", tuple(reversed(state[1])))
            assert match_first_leg(state, rho) == expected
