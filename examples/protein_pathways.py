"""Interaction-pathway reachability in a biological network.

§2.2 cites "analyzing interaction pathways of proteins in biological
networks".  Pathway graphs are deep, layered DAGs where online BFS
walks long chains; plain reachability indexes answer the same questions
from constant-size per-vertex labels.  This example compares several
index families on a layered pathway graph and shows the partial-index
pruning effect on negative queries (§5's central observation).

Run with:  python examples/protein_pathways.py
"""

from __future__ import annotations

import time

from repro.bench.harness import build_index, lookup_statistics, time_workload
from repro.bench.tables import format_seconds, render_table
from repro.core.registry import plain_index
from repro.traversal.online import bfs_reachable
from repro.workloads.datasets import protein_network
from repro.workloads.queries import plain_workload


def main() -> None:
    graph = protein_network(num_layers=14, width=25, seed=13)
    print(f"pathway graph: {graph!r}")

    # negative-heavy workload: most protein pairs do not interact
    workload = plain_workload(graph, 600, positive_fraction=0.2, seed=14)

    rows = []
    bfs_result = time_workload(
        "BFS", lambda s, t: bfs_reachable(graph, s, t), workload
    )
    rows.append(
        ("online BFS", "-", format_seconds(bfs_result.per_query_seconds), "-")
    )
    for name in ("GRAIL", "Ferrari", "BFL", "IP", "PLL", "Preach"):
        built = build_index(plain_index(name), graph)
        result = time_workload(name, built.index.query, workload)
        assert result.wrong_answers == 0
        stats = lookup_statistics(built.index, workload)
        pruned = stats["no_correct"]
        rows.append(
            (
                name,
                f"{built.entries:,}",
                format_seconds(result.per_query_seconds),
                f"{pruned}/{sum(1 for q in workload if not q.reachable)}",
            )
        )
    print()
    print(
        render_table(
            ["index", "entries", "per-query", "negatives killed by lookup"],
            rows,
            title="pathway reachability, 600 queries (80% negative)",
        )
    )
    print(
        "\npartial indexes without false negatives terminate most negative\n"
        "queries in O(1), which is the survey's argument for their design."
    )


if __name__ == "__main__":
    main()
