"""Quickstart: the survey's Figure 1 example, end to end.

Builds plain and path-constrained indexes over the paper's running
example and reproduces the queries §2 and §4 discuss.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import plain_index
from repro.core.oracle import PathReachabilityOracle, PlainReachabilityOracle
from repro.workloads.datasets import figure1a, figure1b, vertex_id


def main() -> None:
    # --- plain reachability (§2.1) --------------------------------------
    graph = figure1a()
    a, g = vertex_id("A"), vertex_id("G")

    oracle = PlainReachabilityOracle(graph, index_name="PLL")
    print(f"Qr(A, G) = {oracle.reachable(a, g)}   # via the path (A, D, H, G)")

    # the same answer from a very different index family
    bfl = plain_index("BFL")
    from repro.core.condensed import CondensedIndex

    index = CondensedIndex.build(graph, inner=bfl)
    print(f"Qr(A, G) = {index.query(a, g)}   # BFL (approximate TC + guided search)")

    # --- path-constrained reachability (§2.2, §4) ------------------------
    labeled = figure1b()
    path_oracle = PathReachabilityOracle(labeled)

    constraint = "(friendOf | follows)*"
    answer = path_oracle.reachable(a, g, constraint)
    print(f"Qr(A, G, {constraint}) = {answer}   # every A-G path needs worksFor")

    l, b = vertex_id("L"), vertex_id("B")
    constraint = "(worksFor . friendOf)*"
    answer = path_oracle.reachable(l, b, constraint)
    print(f"Qr(L, B, {constraint}) = {answer}   # the §4.2 RLC example")

    # --- index sizes: why the TC is infeasible (§2.3) --------------------
    print("\nindex sizes on Figure 1(a):")
    for name in ("TC", "Tree cover", "PLL", "GRAIL", "BFL"):
        cls = plain_index(name)
        if cls.metadata.input_kind == "DAG":
            built = CondensedIndex.build(graph, inner=cls)
        else:
            built = cls.build(graph)
        print(f"  {name:10s} {built.size_in_entries():4d} entries")


if __name__ == "__main__":
    main()
