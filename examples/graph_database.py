"""The §5 vision, end to end: reachability indexes inside a tiny GDBMS.

A compliance team models a corporate network — people, companies,
accounts — and asks reachability questions while the data keeps
changing.  The database maintains a DLCR index incrementally, rebuilds
the RLC index on demand, and reports which index served what.

Run with:  python examples/graph_database.py
"""

from __future__ import annotations

from repro.gdbms import ReachabilityDatabase


def main() -> None:
    db = ReachabilityDatabase()

    people = ["ana", "boris", "chen", "dora", "emil"]
    companies = ["acme", "globex"]
    accounts = ["acc1", "acc2", "acc3"]
    for name in people:
        db.add_node(name, kind="person")
    for name in companies:
        db.add_node(name, kind="company")
    for name in accounts:
        db.add_node(name, kind="account")

    db.add_edge("ana", "knows", "boris")
    db.add_edge("boris", "knows", "chen")
    db.add_edge("chen", "worksFor", "acme")
    db.add_edge("dora", "worksFor", "acme")
    db.add_edge("dora", "knows", "emil")
    db.add_edge("emil", "controls", "acc1")
    db.add_edge("acc1", "transfersTo", "acc2")
    db.add_edge("acc2", "transfersTo", "acc3")

    print(f"{db!r}\n")

    # social closeness: only 'knows' edges
    print("ana -(knows)*-> chen:", db.reaches_via("ana", "(knows)*", "chen"))
    print("ana -(knows)*-> emil:", db.reaches_via("ana", "(knows)*", "emil"))

    # any connection at all
    print("ana reaches acc3:", db.reaches("ana", "acc3"))

    # the compliance pattern: repeated transfers
    pattern = "(transfersTo)*"
    print(f"acc1 -{pattern}-> acc3:", db.reaches_via("acc1", pattern, "acc3"))

    # live update: a new introduction closes the social gap
    print("\n-- boris meets dora --")
    db.add_edge("boris", "knows", "dora")
    print("ana -(knows)*-> emil:", db.reaches_via("ana", "(knows)*", "emil"))
    everyone_ana_knows = db.reachable_from("ana", "(knows)*")
    print("ana's social closure:", sorted(everyone_ana_knows))

    # and a retraction opens it again
    print("\n-- boris and dora fall out --")
    db.remove_edge("boris", "knows", "dora")
    print("ana -(knows)*-> emil:", db.reaches_via("ana", "(knows)*", "emil"))

    stats = db.explain()
    print(
        f"\nserved: plain={stats.plain_index} "
        f"alternation={stats.alternation_index} "
        f"concatenation={stats.concatenation_index} "
        f"traversal={stats.traversal}; rebuilds={stats.rebuilds}"
    )


if __name__ == "__main__":
    main()
