"""Social-relationship analysis with label-constrained reachability.

The survey's §2.2 motivates LCR queries with social-network analysis:
"is this person connected to that person purely through friendship /
follow relationships?"  This example builds a synthetic social graph,
indexes it with P2H+, and contrasts constrained and unconstrained
connectivity — then shows the dynamic side with DLCR as relationships
are added and removed.

Run with:  python examples/social_relationships.py
"""

from __future__ import annotations

import random
import time

from repro.core.registry import labeled_index
from repro.traversal.rpq import rpq_reachable
from repro.workloads.datasets import social_network


def main() -> None:
    graph = social_network(num_vertices=250, seed=7)
    print(f"social graph: {graph!r}")

    build_start = time.perf_counter()
    index = labeled_index("P2H+").build(graph)
    build_time = time.perf_counter() - build_start
    print(
        f"P2H+ built in {build_time * 1e3:.1f} ms, "
        f"{index.size_in_entries():,} label entries\n"
    )

    rng = random.Random(0)
    pairs = [
        (rng.randrange(graph.num_vertices), rng.randrange(graph.num_vertices))
        for _ in range(8)
    ]

    social_only = "(friendOf | follows)*"
    any_relation = "(friendOf | follows | worksFor)*"
    print(f"{'pair':>12s}  {'social-only':>12s}  {'any-relation':>12s}")
    for s, t in pairs:
        socially = index.query(s, t, social_only)
        anyhow = index.query(s, t, any_relation)
        print(f"{f'({s},{t})':>12s}  {str(socially):>12s}  {str(anyhow):>12s}")
        # sanity: the index agrees with online automaton-guided traversal
        assert socially == rpq_reachable(graph, s, t, social_only)
        assert anyhow == rpq_reachable(graph, s, t, any_relation)

    # --- dynamic relationships with DLCR ---------------------------------
    print("\nDLCR under updates:")
    dynamic = labeled_index("DLCR").build(graph.copy())
    g = dynamic.graph
    s, t = pairs[0]
    before = dynamic.query(s, t, social_only)
    # add a direct friendship and watch the answer flip (or stay true)
    if not g.has_edge(s, t, "friendOf"):
        dynamic.insert_edge(s, t, "friendOf")
    after = dynamic.query(s, t, social_only)
    print(f"  Qr({s},{t}, social-only): {before} -> {after} after adding friendOf edge")
    assert after is True
    dynamic.delete_edge(s, t, "friendOf")
    restored = dynamic.query(s, t, social_only)
    print(f"  ... and back to {restored} after removing it")
    assert restored == before


if __name__ == "__main__":
    main()
