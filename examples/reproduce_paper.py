"""Reproduce every paper artifact in one run.

Prints, in order: the regenerated Tables 1 and 2, the Figure 1 worked
examples, and the measured table for each quantitative prose claim and
ablation listed in DESIGN.md — the same content the benchmark suite
asserts, as a single readable report.

Run with:  python examples/reproduce_paper.py       (takes a few minutes)
"""

from __future__ import annotations

from repro.bench import experiments
from repro.bench.tables import format_seconds, render_table


def _fmt(value: float) -> str:
    return format_seconds(value)


def tables() -> None:
    print(
        render_table(
            ["Indexing Technique", "Framework", "Index Type", "Input", "Dynamic"],
            experiments.taxonomy_table1_rows(),
            title="Table 1 (regenerated from live metadata)",
        )
    )
    print()
    print(
        render_table(
            ["Indexing Technique", "Framework", "Constraint", "Type", "Input", "Dynamic"],
            experiments.taxonomy_table2_rows(),
            title="Table 2 (regenerated from live metadata)",
        )
    )


def figure1() -> None:
    from repro.core.oracle import PathReachabilityOracle, PlainReachabilityOracle
    from repro.labeled.gtc import GTCIndex
    from repro.workloads.datasets import figure1a, figure1b, vertex_id

    a, g, l, b, m = (vertex_id(x) for x in "AGLBM")
    plain = PlainReachabilityOracle(figure1a())
    labeled = figure1b()
    paths = PathReachabilityOracle(labeled)
    gtc = GTCIndex.build(labeled)
    rows = [
        ("Qr(A, G)", str(plain.reachable(a, g))),
        (
            "Qr(A, G, (friendOf|follows)*)",
            str(paths.reachable(a, g, "(friendOf | follows)*")),
        ),
        (
            "Qr(L, B, (worksFor.friendOf)*)",
            str(paths.reachable(l, b, "(worksFor . friendOf)*")),
        ),
        (
            "SPLS(L, M)",
            str(sorted(map(str, labeled.mask_to_labels(gtc.spls(l, m)[0])))),
        ),
        (
            "SPLS(A, M)",
            str(sorted(map(str, labeled.mask_to_labels(gtc.spls(a, m)[0])))),
        ),
    ]
    print(render_table(["Figure 1 example", "measured"], rows, title="Figure 1"))


def claims() -> None:
    rows = experiments.query_speed_rows()
    print(
        render_table(
            ["method", "kind", "per-query"],
            [
                (r["name"], r["kind"], _fmt(r["per_query"]))
                for r in sorted(rows, key=lambda r: r["per_query"])
            ],
            title="CLAIM-S3-SPEED",
        )
    )
    print()
    size_rows = experiments.index_size_rows()
    print(
        render_table(
            ["index", "entries"],
            [(r["name"], f"{r['entries']:,}") for r in size_rows],
            title="CLAIM-S3-SIZE",
        )
    )
    print()
    fpr = experiments.approx_tc_rows()
    print(
        render_table(
            ["config", "negatives killed", "lookup FPs"],
            [
                (
                    r["name"],
                    f"{r['negatives_killed']}/{r['negatives_total']}",
                    r["false_positive_maybes"],
                )
                for r in fpr
            ],
            title="CLAIM-S33-FPR",
        )
    )
    print()
    dyn = experiments.dynamic_rows()
    print(
        render_table(
            ["index", "insert (ms)", "delete (ms)", "rebuild (ms)"],
            [
                (
                    r["name"],
                    f"{r['insert_ms']:.2f}",
                    "-" if r["delete_ms"] is None else f"{r['delete_ms']:.2f}",
                    f"{r['rebuild_ms']:.1f}",
                )
                for r in dyn
            ],
            title="CLAIM-S32-DYN",
        )
    )
    print()
    lcr = experiments.lcr_rows()
    print(
        render_table(
            ["method", "per-query"],
            [
                (r["name"], _fmt(r["per_query"]))
                for r in sorted(lcr, key=lambda r: r["per_query"])
            ],
            title="CLAIM-S4-LCR",
        )
    )
    print()
    orders = experiments.ablation_order_rows()
    print(
        render_table(
            ["total order", "entries"],
            [
                (r["order"], f"{r['entries']:,}")
                for r in sorted(orders, key=lambda r: r["entries"])
            ],
            title="ABL-ORDER",
        )
    )


def main() -> None:
    tables()
    print()
    figure1()
    print()
    claims()
    print("\nFull suite with assertions: pytest benchmarks/ --benchmark-only -s")


if __name__ == "__main__":
    main()
