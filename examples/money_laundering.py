"""Money-laundering pattern detection with concatenation queries.

§2.2 lists "money laundering detection in financial transaction
networks" among the applications of path-constrained reachability.  A
classic structuring pattern alternates transaction types — e.g. repeated
``withdraw -> deposit`` hops across accounts.  That is exactly a
recursive label-concatenated (RLC) query: ``(withdraw · deposit)*``.

This example plants such a chain inside a noisy synthetic transaction
network and finds every account the suspect can reach through the
pattern, comparing the RLC index against plain automaton-guided search.

Run with:  python examples/money_laundering.py
"""

from __future__ import annotations

import time

from repro.core.registry import labeled_index
from repro.traversal.rpq import constrained_descendants
from repro.workloads.datasets import transaction_network


def main() -> None:
    graph = transaction_network(num_vertices=200, seed=17)
    # plant a laundering chain: suspect -> m1 -> m2 -> ... alternating
    suspect = 0
    chain = [suspect, 41, 87, 123, 160, 199]
    for i, (u, v) in enumerate(zip(chain, chain[1:])):
        label = "withdraw" if i % 2 == 0 else "deposit"
        if not graph.has_edge(u, v, label):
            graph.add_edge(u, v, label)
    print(f"transaction graph: {graph!r}")
    print(f"planted chain: {' -> '.join(map(str, chain))}")

    pattern = "(withdraw . deposit)*"
    build_start = time.perf_counter()
    index = labeled_index("RLC").build(graph, max_period=2)
    build_time = time.perf_counter() - build_start
    print(
        f"RLC index built in {build_time * 1e3:.1f} ms "
        f"({index.size_in_entries():,} entries)\n"
    )

    # who can the suspect reach through whole repeats of the pattern?
    flagged = sorted(
        t
        for t in graph.vertices()
        if t != suspect and index.query(suspect, t, pattern)
    )
    print(f"accounts reachable from {suspect} via {pattern}: {flagged}")

    # the planted even-position hops must be flagged
    for position, account in enumerate(chain[1:], start=1):
        if position % 2 == 0:  # complete (withdraw, deposit) repeats
            assert account in flagged, account

    # cross-check against the online product-automaton search
    expected = constrained_descendants(graph, suspect, pattern) - {suspect}
    assert set(flagged) == expected
    print("matches automaton-guided traversal: OK")

    # timing comparison on repeated queries
    queries = [(suspect, t) for t in range(graph.num_vertices)]
    start = time.perf_counter()
    for s, t in queries:
        index.query(s, t, pattern)
    indexed = time.perf_counter() - start
    start = time.perf_counter()
    reachable = constrained_descendants(graph, suspect, pattern)
    online_one_source = time.perf_counter() - start
    print(
        f"\n{len(queries)} indexed queries: {indexed * 1e3:.1f} ms total; "
        f"one online constrained BFS: {online_one_source * 1e3:.1f} ms"
    )


if __name__ == "__main__":
    main()
