"""Maintaining a reachability index on an evolving citation graph.

New papers appear and (rarely) retractions remove edges; §3.2 and §5
review which indexes survive updates.  This example streams inserts and
deletes through TOL — the total-order approach built for exactly this —
and through DBL for the insert-only case, verifying answers against BFS
at every step and reporting maintenance cost.

Run with:  python examples/evolving_citations.py
"""

from __future__ import annotations

import random
import time

from repro.core.registry import plain_index
from repro.traversal.online import bfs_reachable
from repro.workloads.datasets import citation_network


def main() -> None:
    graph = citation_network(num_vertices=200, seed=11)
    print(f"citation graph: {graph!r}")

    index = plain_index("TOL").build(graph.copy())
    g = index.graph
    rng = random.Random(3)

    inserts = deletes = 0
    start = time.perf_counter()
    for _step in range(120):
        edges = list(g.edges())
        if rng.random() < 0.3 and edges:
            u, v = edges[rng.randrange(len(edges))]
            index.delete_edge(u, v)  # a retraction
            deletes += 1
        else:
            for _attempt in range(200):
                # a new paper cites an older one: later id -> earlier id
                u = rng.randrange(1, g.num_vertices)
                v = rng.randrange(u)
                if not g.has_edge(u, v):
                    index.insert_edge(u, v)
                    inserts += 1
                    break
    maintenance = time.perf_counter() - start
    print(
        f"TOL: {inserts} inserts + {deletes} deletes maintained in "
        f"{maintenance * 1e3:.1f} ms ({index.size_in_entries():,} entries)"
    )

    # spot-check exactness after the whole stream
    checks = 0
    for _ in range(500):
        s = rng.randrange(g.num_vertices)
        t = rng.randrange(g.num_vertices)
        assert index.query(s, t) == bfs_reachable(g, s, t)
        checks += 1
    print(f"verified {checks} random queries against BFS: OK")

    # insert-only stream through DBL (§3.2: "designed for insertion-only")
    dbl = plain_index("DBL").build(citation_network(num_vertices=200, seed=11))
    g2 = dbl.graph
    start = time.perf_counter()
    added = 0
    for _ in range(200):
        u = rng.randrange(1, g2.num_vertices)
        v = rng.randrange(u)
        if not g2.has_edge(u, v):
            dbl.insert_edge(u, v)
            added += 1
    print(
        f"DBL: {added} inserts in {(time.perf_counter() - start) * 1e3:.1f} ms "
        f"(constant-size labels: {dbl.size_in_entries():,} words)"
    )
    for _ in range(300):
        s = rng.randrange(g2.num_vertices)
        t = rng.randrange(g2.num_vertices)
        assert dbl.query(s, t) == bfs_reachable(g2, s, t)
    print("verified 300 random queries against BFS: OK")


if __name__ == "__main__":
    main()
