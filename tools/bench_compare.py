#!/usr/bin/env python
"""Compare ``BENCH_*.json`` artifacts against committed baselines.

Regression gate for CI: given a baseline artifact (committed at the repo
root) and a freshly produced one, diff the ``results.headline`` numbers
and exit 1 when something regressed.

Two kinds of headline entry are understood:

* ``{"value": v, "max": m}`` (or ``"min"``) — an absolute ceiling or
  floor.  These are machine-independent contracts ("audit mismatches
  must be 0", "overhead must stay under 5%"), so only the *current*
  artifact's bound is enforced; the baseline just has to agree on the
  key existing.
* a plain number — compared relatively against the baseline, allowing
  ``--tolerance`` (default 25%) drift in the losing direction.  Which
  direction loses is inferred from the key's suffix: ``_s``/``_ms``/
  ``_us``/``_pct``/``_bytes`` mean lower-is-better; ``_x``/``_qps``/
  ``_speedup``/``_rate`` mean higher-is-better.  Keys with no
  recognisable suffix are reported but never fail the gate (a number
  whose good direction is unknown cannot be judged).

Artifacts without a ``results.headline`` section are skipped with a
warning — older benchmarks emit free-form results; the gate only binds
the ones that opted into the headline contract.

Usage::

    python tools/bench_compare.py BASELINE.json CURRENT.json [--tolerance 0.25]
    python tools/bench_compare.py --baseline-dir . --current-dir /tmp/bench
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SUPPORTED_SCHEMA = 1

LOWER_IS_BETTER = ("_s", "_ms", "_us", "_pct", "_bytes")
HIGHER_IS_BETTER = ("_x", "_qps", "_speedup", "_rate")


def _load(path: Path) -> dict:
    document = json.loads(path.read_text(encoding="utf-8"))
    schema = document.get("schema_version")
    if schema is not None and schema > SUPPORTED_SCHEMA:
        raise SystemExit(
            f"{path}: schema_version {schema} is newer than this tool "
            f"understands ({SUPPORTED_SCHEMA}); refusing to guess"
        )
    return document


def _headline(document: dict) -> dict | None:
    results = document.get("results")
    if isinstance(results, dict):
        headline = results.get("headline")
        if isinstance(headline, dict):
            return headline
    return None


def _direction(key: str) -> str | None:
    if key.endswith(LOWER_IS_BETTER):
        return "lower"
    if key.endswith(HIGHER_IS_BETTER):
        return "higher"
    return None


def compare_headlines(
    name: str, baseline: dict, current: dict, tolerance: float
) -> list[str]:
    """Return a list of human-readable regression messages (empty = pass)."""
    failures: list[str] = []
    for key, current_value in sorted(current.items()):
        baseline_value = baseline.get(key)
        if isinstance(current_value, dict):
            value = current_value.get("value")
            if not isinstance(value, (int, float)):
                continue
            ceiling = current_value.get("max")
            floor = current_value.get("min")
            if isinstance(ceiling, (int, float)) and value > ceiling:
                failures.append(
                    f"{name}: {key} = {value} exceeds its ceiling {ceiling}"
                )
            elif isinstance(floor, (int, float)) and value < floor:
                failures.append(
                    f"{name}: {key} = {value} is under its floor {floor}"
                )
            else:
                bound = (
                    f"<= {ceiling}" if isinstance(ceiling, (int, float))
                    else f">= {floor}"
                )
                print(f"  ok  {name}: {key} = {value} ({bound})")
            continue
        if not isinstance(current_value, (int, float)):
            continue
        if not isinstance(baseline_value, (int, float)):
            print(f"  new {name}: {key} = {current_value} (no baseline)")
            continue
        direction = _direction(key)
        if direction is None:
            print(
                f"  --  {name}: {key} = {current_value} "
                f"(baseline {baseline_value}; direction unknown, not judged)"
            )
            continue
        if baseline_value == 0:
            print(f"  --  {name}: {key} baseline is 0, not judged")
            continue
        change = (current_value - baseline_value) / abs(baseline_value)
        regressed = (
            change > tolerance if direction == "lower" else change < -tolerance
        )
        marker = "FAIL" if regressed else "ok "
        print(
            f"  {marker} {name}: {key} = {current_value:g} "
            f"(baseline {baseline_value:g}, {change:+.1%}, {direction} is better)"
        )
        if regressed:
            failures.append(
                f"{name}: {key} regressed {change:+.1%} "
                f"(baseline {baseline_value:g} -> {current_value:g}, "
                f"tolerance {tolerance:.0%})"
            )
    return failures


def compare_files(
    baseline_path: Path, current_path: Path, tolerance: float
) -> list[str]:
    baseline = _load(baseline_path)
    current = _load(current_path)
    name = current.get("bench") or current_path.stem
    current_headline = _headline(current)
    if current_headline is None:
        print(f"  skip {name}: no results.headline in {current_path}")
        return []
    baseline_headline = _headline(baseline)
    if baseline_headline is None:
        print(f"  skip {name}: no results.headline in baseline {baseline_path}")
        return []
    return compare_headlines(name, baseline_headline, current_headline, tolerance)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?", help="baseline BENCH_*.json")
    parser.add_argument("current", nargs="?", help="freshly produced BENCH_*.json")
    parser.add_argument(
        "--baseline-dir",
        default=None,
        help="directory of committed baselines (pair by filename)",
    )
    parser.add_argument(
        "--current-dir",
        default=None,
        help="directory of freshly produced artifacts",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative drift in the losing direction (default 0.25)",
    )
    args = parser.parse_args(argv)

    pairs: list[tuple[Path, Path]] = []
    if args.baseline and args.current:
        pairs.append((Path(args.baseline), Path(args.current)))
    elif args.baseline_dir and args.current_dir:
        current_dir = Path(args.current_dir)
        for current_path in sorted(current_dir.glob("BENCH_*.json")):
            baseline_path = Path(args.baseline_dir) / current_path.name
            if baseline_path.exists():
                pairs.append((baseline_path, current_path))
            else:
                print(f"  skip {current_path.name}: no committed baseline")
    else:
        parser.error("give BASELINE CURRENT or --baseline-dir/--current-dir")
    if not pairs:
        print("nothing to compare")
        return 0

    failures: list[str] = []
    for baseline_path, current_path in pairs:
        failures.extend(compare_files(baseline_path, current_path, args.tolerance))
    if failures:
        print("\nregressions:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
